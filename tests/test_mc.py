"""The vectorized Monte-Carlo corner engine: oracle and behaviour tests.

The two contracts everything else leans on:

* **nominal oracle** -- the batch kernel evaluated at the nominal corner
  must reproduce :func:`repro.timing.sta.analyze` (and therefore the
  incremental engine) *bit for bit* on every CORE circuit, under
  randomized sizings;
* **corner-stream compatibility** -- the array corner sampler consumes
  the rng stream exactly like the scalar ``perturbed_technology`` loop,
  and the batch evaluation of those corners matches the per-corner
  scalar loop within 1e-12 relative (bit-identical on this platform;
  the tolerance is the portable contract).
"""

import numpy as np
import pytest

from repro.analysis.variation import VariationSpec, perturbed_technology
from repro.api import KIND_MC, Job, RunRecord, Session
from repro.iscas.loader import load_benchmark
from repro.mc import (
    batch_analyze,
    batch_path_delays,
    compile_circuit,
    mc_analyze,
    mc_result_from_dict,
    mc_result_to_dict,
    mc_scalar_samples,
    nominal_corners,
    sample_corners,
)
from repro.timing.delay_model import Edge
from repro.timing.incremental import IncrementalSta
from repro.timing.sta import analyze

#: The paper's benchmark set (mirrors ``benchmarks/conftest.py``).
CORE_CIRCUITS = (
    "adder16",
    "c432",
    "c499",
    "c880",
    "c1355",
    "c1908",
    "c3540",
    "c5315",
    "c7552",
)

#: Portable numerical contract for batch-vs-scalar corner agreement.
RTOL = 1e-12


def _randomly_sized(name: str, lib, seed: int = 11):
    circuit = load_benchmark(name)
    rng = np.random.default_rng(seed)
    for gate in circuit.gates.values():
        base = lib.cell(gate.kind).cin_min(lib.tech)
        gate.cin_ff = base * float(rng.uniform(1.0, 6.0))
    return circuit


class TestCornerSampling:
    def test_matches_scalar_rng_stream(self, lib):
        spec = VariationSpec()
        corners = sample_corners(lib.tech, spec, n_samples=20, seed=7)
        rng = np.random.default_rng(7)
        for i in range(20):
            scalar = perturbed_technology(lib.tech, spec, rng)
            batch = corners.technology_at(i)
            assert batch.tau_ps == scalar.tau_ps
            assert batch.r_ratio == scalar.r_ratio
            assert batch.vtn == scalar.vtn
            assert batch.vtp == scalar.vtp
            assert batch.c_gate_ff_per_um == scalar.c_gate_ff_per_um
            assert batch.c_junction_ff_per_um == scalar.c_junction_ff_per_um

    def test_zero_sigma_skips_the_draw(self, lib):
        # A zero sigma must not consume stream values (the scalar guard).
        spec = VariationSpec(tau_sigma=0.0, c_gate_sigma=0.0)
        corners = sample_corners(lib.tech, spec, n_samples=10, seed=3)
        rng = np.random.default_rng(3)
        for i in range(10):
            scalar = perturbed_technology(lib.tech, spec, rng)
            assert corners.technology_at(i) == scalar
        assert np.all(corners.tau_ps == lib.tech.tau_ps)

    def test_deterministic(self, lib):
        a = sample_corners(lib.tech, n_samples=50, seed=5)
        b = sample_corners(lib.tech, n_samples=50, seed=5)
        assert np.array_equal(a.tau_ps, b.tau_ps)
        assert np.array_equal(a.vtn, b.vtn)

    def test_nominal_corners(self, lib):
        corners = nominal_corners(lib.tech, 3)
        assert corners.n_samples == 3
        assert np.all(corners.tau_ps == lib.tech.tau_ps)
        assert np.all(corners.r_ratio == lib.tech.r_ratio)

    def test_validation(self, lib):
        with pytest.raises(ValueError):
            sample_corners(lib.tech, n_samples=0)
        with pytest.raises(ValueError):
            nominal_corners(lib.tech, 0)


class TestCompile:
    def test_levelized_row_space(self, lib):
        circuit = load_benchmark("fpd")
        compiled = compile_circuit(circuit, lib)
        assert compiled.n_inputs == len(circuit.inputs)
        assert compiled.n_gates == len(circuit.gates)
        assert set(compiled.names) == set(circuit.gates)
        # Every gate's fan-in lives in strictly earlier rows.
        for gate_id, name in enumerate(compiled.names):
            row = compiled.n_inputs + gate_id
            for slot, valid in enumerate(compiled.fanin_mask[gate_id]):
                if valid:
                    assert compiled.fanin_rows[gate_id, slot] < row

    def test_bind_rejects_other_structures(self, lib):
        compiled = compile_circuit(load_benchmark("fpd"), lib)
        with pytest.raises(ValueError):
            compiled.bind(load_benchmark("c432"))

    def test_bind_refreshes_sizing(self, lib):
        circuit = load_benchmark("fpd")
        compiled = compile_circuit(circuit, lib)
        before = compiled.sizes_dict()
        name = next(iter(circuit.gates))
        circuit.gates[name].cin_ff = 25.0
        compiled.bind(circuit)
        assert compiled.sizes_dict()[name] == 25.0
        assert before[name] != 25.0


class TestNominalOracle:
    @pytest.mark.parametrize("name", CORE_CIRCUITS)
    def test_bit_identical_to_analyze(self, name, lib):
        circuit = _randomly_sized(name, lib)
        compiled = compile_circuit(circuit, lib)
        batch = batch_analyze(compiled, nominal_corners(lib.tech, 1))
        oracle = analyze(circuit, lib)
        assert batch.critical_delay_ps[0] == oracle.critical_delay_ps
        for net in circuit.gates:
            for edge in (Edge.RISE, Edge.FALL):
                event = oracle.arrivals[net][edge]
                assert batch.arrival(net, edge)[0] == event.time_ps
                assert batch.transition(net, edge)[0] == event.transition_ps

    def test_bit_identical_to_incremental_engine(self, lib):
        circuit = _randomly_sized("c880", lib)
        engine = IncrementalSta(circuit, lib)
        # Perturb a few sizes through the engine's update path.
        rng = np.random.default_rng(2)
        names = list(circuit.gates)
        for name in (names[3], names[50], names[200]):
            circuit.gates[name].cin_ff *= float(rng.uniform(1.1, 1.8))
        result = engine.update([names[3], names[50], names[200]])
        batch = batch_analyze(
            compile_circuit(circuit, lib), nominal_corners(lib.tech, 1)
        )
        assert batch.critical_delay_ps[0] == result.critical_delay_ps
        for net in circuit.gates:
            for edge in (Edge.RISE, Edge.FALL):
                event = result.arrivals[net][edge]
                assert batch.arrival(net, edge)[0] == event.time_ps

    def test_nominal_column_matches_default_sizing(self, lib):
        circuit = load_benchmark("c499")  # unsized: library-minimum path
        batch = batch_analyze(
            compile_circuit(circuit, lib), nominal_corners(lib.tech, 1)
        )
        assert batch.critical_delay_ps[0] == analyze(circuit, lib).critical_delay_ps


class TestBatchVsScalarCorners:
    def test_fpd_samples_match_scalar_loop(self, lib):
        circuit = _randomly_sized("fpd", lib)
        compiled = compile_circuit(circuit, lib)
        corners = sample_corners(lib.tech, n_samples=60, seed=42)
        batch = batch_analyze(compiled, corners)
        scalar = mc_scalar_samples(circuit, lib, n_samples=60, seed=42)
        np.testing.assert_allclose(
            batch.critical_delay_ps, scalar, rtol=RTOL, atol=0.0
        )

    def test_endpoint_worst_equals_critical(self, lib):
        compiled = compile_circuit(load_benchmark("c432"), lib)
        batch = batch_analyze(compiled, sample_corners(lib.tech, n_samples=40))
        worst = batch.endpoint_arrivals().max(axis=0)
        assert np.array_equal(worst, batch.critical_delay_ps)

    def test_batch_path_kernel_matches_single_corner(self, lib, short_path):
        from repro.sizing.bounds import min_delay_bound
        from repro.timing.evaluation import path_delay_ps

        _, sizes, _, _ = min_delay_bound(short_path, lib)
        corners = sample_corners(lib.tech, n_samples=10, seed=1)
        batch = batch_path_delays(short_path, sizes, lib, corners)
        # Nominal corners reproduce the plain evaluation exactly.
        nominal = batch_path_delays(
            short_path, sizes, lib, nominal_corners(lib.tech, 4)
        )
        assert np.all(nominal == path_delay_ps(short_path, sizes, lib))
        assert batch.shape == (10,)
        assert np.all(batch > 0)


class TestMcAnalyze:
    @pytest.fixture(scope="class")
    def result(self, lib):
        return mc_analyze(
            load_benchmark("c880"), lib, n_samples=200, seed=4, tc_ps=7200.0
        )

    def test_statistics_sane(self, result):
        assert result.p01_ps <= result.p50_ps <= result.p99_ps
        assert result.mean_ps == pytest.approx(result.nominal_ps, rel=0.15)
        assert result.std_ps > 0
        assert result.guard_band > 1.0
        assert result.required_guard_band > 1.0

    def test_yield_monotone_in_tc(self, result):
        lo = result.yield_at(result.p01_ps)
        mid = result.yield_at(result.p50_ps)
        hi = result.yield_at(float(result.samples_ps.max()))
        assert lo <= mid <= hi
        assert hi == pytest.approx(1.0)

    def test_endpoints_cover_outputs(self, result, lib):
        circuit = load_benchmark("c880")
        assert {e.net for e in result.endpoints} == set(circuit.outputs)
        worst = max(e.nominal_ps for e in result.endpoints)
        assert worst == result.nominal_ps
        assert all(e.yield_frac is not None for e in result.endpoints)

    def test_deterministic(self, lib):
        circuit = load_benchmark("fpd")
        a = mc_analyze(circuit, lib, n_samples=50, seed=9)
        b = mc_analyze(circuit, lib, n_samples=50, seed=9)
        assert np.array_equal(a.samples_ps, b.samples_ps)
        assert a.endpoints == b.endpoints

    def test_distribution_view(self, result):
        dist = result.distribution()
        assert dist.nominal_ps == result.nominal_ps
        assert dist.guard_band == pytest.approx(result.guard_band)

    def test_validation(self, lib):
        circuit = load_benchmark("fpd")
        with pytest.raises(ValueError):
            mc_analyze(circuit, lib, n_samples=1)
        with pytest.raises(ValueError):
            mc_analyze(circuit, lib, n_samples=10, tc_ps=-1.0)
        with pytest.raises(ValueError):
            mc_analyze(circuit, lib, n_samples=10, target_yield=1.5)

    def test_round_trip(self, result):
        clone = mc_result_from_dict(mc_result_to_dict(result))
        assert clone.name == result.name
        assert np.array_equal(clone.samples_ps, result.samples_ps)
        assert clone.endpoints == result.endpoints
        assert clone.spec == result.spec
        assert mc_result_to_dict(clone) == mc_result_to_dict(result)


class TestSessionMc:
    def test_record_kind_and_extras(self):
        session = Session()
        record = session.mc(Job(benchmark="fpd", mc_samples=60))
        assert record.kind == KIND_MC
        assert record.payload.n_samples == 60
        assert "guard_band" in record.extra
        assert "yield" not in record.extra  # no constraint on the job

    def test_constraint_becomes_yield_target(self):
        session = Session()
        record = session.mc(Job(benchmark="fpd", tc_ps=1700.0, mc_samples=60))
        assert record.extra["tc_ps"] == 1700.0
        assert 0.0 <= record.extra["yield"] <= 1.0
        assert record.payload.yield_fraction == record.extra["yield"]
        # An absolute constraint must not pay the eq. 4 bounds solve.
        assert session.stats.bounds_misses == 0

    def test_relative_constraint_resolves_against_tmin(self):
        session = Session()
        record = session.mc(Job(benchmark="fpd", tc_ratio=2.0, mc_samples=60))
        assert session.stats.bounds_misses == 1
        tmin = session.path_bounds(session.benchmark("fpd")).tmin_ps
        assert record.extra["tc_ps"] == pytest.approx(2.0 * tmin)

    def test_compilation_cached_per_structure(self):
        session = Session()
        job = Job(benchmark="fpd", mc_samples=40)
        session.mc(job)
        assert (session.stats.compile_misses, session.stats.compile_hits) == (1, 0)
        session.mc(job)
        assert (session.stats.compile_misses, session.stats.compile_hits) == (1, 1)
        session.clear_caches()
        session.mc(job)
        assert session.stats.compile_misses == 2

    def test_resized_circuit_reuses_compilation(self, lib):
        session = Session()
        circuit = load_benchmark("fpd")
        first = session.mc(Job(circuit=circuit, mc_samples=40))
        for gate in circuit.gates.values():
            gate.cin_ff = 2.0 * lib.cell(gate.kind).cin_min(lib.tech)
        second = session.mc(Job(circuit=circuit, mc_samples=40))
        assert session.stats.compile_hits == 1
        # Bigger drives, same loads at the boundary: timing changed.
        assert second.payload.nominal_ps != first.payload.nominal_ps

    def test_record_json_round_trip(self):
        session = Session()
        record = session.mc(Job(benchmark="fpd", tc_ps=1700.0, mc_samples=40))
        clone = RunRecord.from_json(record.to_json(), library=session.library)
        assert clone.to_dict() == record.to_dict()
        assert np.array_equal(clone.payload.samples_ps, record.payload.samples_ps)

    def test_mc_job_validation(self):
        from repro.api import JobError

        with pytest.raises(JobError):
            Job(benchmark="fpd", mc_samples=1)
        with pytest.raises(JobError):
            Job(benchmark="fpd", mc_seed=1.5)
