"""Cross-module integration tests: the paper's flows end to end."""

import pytest

from repro.baselines.amps import amps_distribute_constraint, amps_minimum_delay
from repro.buffering.insertion import default_flimits, min_delay_with_buffers
from repro.iscas.loader import load_benchmark
from repro.protocol.domains import ConstraintDomain
from repro.protocol.optimizer import optimize_path
from repro.restructuring.demorgan import distribute_with_restructuring
from repro.sizing.bounds import delay_bounds
from repro.sizing.sensitivity import distribute_constraint
from repro.timing.critical_paths import critical_path


@pytest.fixture(scope="module")
def limits(lib):
    return default_flimits(lib)


@pytest.fixture(scope="module")
def c432_path(lib):
    return critical_path(load_benchmark("c432"), lib)


class TestFig2Shape:
    """POPS Tmin <= AMPS Tmin on benchmark critical paths."""

    @pytest.mark.parametrize("name", ["fpd", "c432", "c499"])
    def test_pops_floor(self, lib, name):
        path = critical_path(load_benchmark(name), lib).path
        bounds = delay_bounds(path, lib)
        amps = amps_minimum_delay(path, lib, random_restarts=1)
        assert bounds.tmin_ps <= amps.delay_ps + 1e-6
        assert amps.delay_ps <= 1.25 * bounds.tmin_ps  # both are real sizers


class TestFig4Shape:
    """At Tc = 1.2 Tmin, POPS area <= AMPS area."""

    def test_area_advantage(self, lib, c432_path):
        bounds = delay_bounds(c432_path.path, lib)
        tc = 1.2 * bounds.tmin_ps
        ours = distribute_constraint(c432_path.path, lib, tc)
        theirs = amps_distribute_constraint(c432_path.path, lib, tc)
        assert ours.feasible and theirs.met_constraint
        assert ours.area_um <= theirs.area_um * 1.02


class TestTable1Shape:
    """The evaluation-count (CPU) gap between POPS and AMPS."""

    def test_two_orders_of_magnitude(self, lib, c432_path):
        bounds = delay_bounds(c432_path.path, lib)
        tc = 1.2 * bounds.tmin_ps
        ours = distribute_constraint(c432_path.path, lib, tc)
        theirs = amps_distribute_constraint(c432_path.path, lib, tc)
        assert theirs.evaluations > 20 * ours.solver_evaluations


class TestTable3Shape:
    """Buffer insertion Tmin gains on the benchmark suite."""

    def test_gains_in_paper_band(self, lib, limits):
        gains = {}
        for name in ("adder16", "c432", "c1355", "c3540"):
            path = critical_path(load_benchmark(name), lib).path
            result = min_delay_with_buffers(path, lib, limits=limits)
            gains[name] = result.gain
        # Shape: heavy-fanout circuits benefit, regular ones barely.
        assert gains["c1355"] > gains["c3540"]
        assert gains["c432"] > gains["adder16"] - 1e-9
        assert all(0.0 <= g < 0.35 for g in gains.values())


class TestTable4Shape:
    """De Morgan restructuring beats buffering in area on NOR-rich paths."""

    def test_restructuring_saves_area_under_hard_tc(self, lib, limits):
        from repro.buffering.insertion import distribute_with_buffers

        path = critical_path(load_benchmark("c1355"), lib).path
        bounds = delay_bounds(path, lib)
        buffered_min = min_delay_with_buffers(path, lib, limits=limits)
        if buffered_min.delay_ps >= bounds.tmin_ps:
            pytest.skip("no buffering advantage on this extraction")
        tc = max(1.02 * buffered_min.delay_ps, 0.99 * bounds.tmin_ps)
        buffered, _, _ = distribute_with_buffers(path, lib, tc, limits=limits)
        restructured, rewritten = distribute_with_restructuring(
            path, lib, tc, limits=limits
        )
        if restructured.feasible and buffered.feasible:
            total_restructured = (
                restructured.area_um + rewritten.side_inverter_area_um
            )
            # Table 4 band: within +-25% and usually an actual saving.
            assert total_restructured <= 1.25 * buffered.area_um


class TestProtocolSelection:
    """The Fig. 7 decision table picks the right technique per domain."""

    def test_domain_methods(self, lib, limits, c432_path):
        bounds = delay_bounds(c432_path.path, lib)
        weak = optimize_path(c432_path.path, lib, 3.0 * bounds.tmin_ps, limits=limits)
        hard = optimize_path(c432_path.path, lib, 1.05 * bounds.tmin_ps, limits=limits)
        assert weak.domain.domain is ConstraintDomain.WEAK
        assert weak.method == "sizing"
        assert hard.domain.domain is ConstraintDomain.HARD
        assert hard.feasible
        # Hard constraints cost more area than weak ones.
        assert hard.area_um > weak.area_um


class TestPowerStory:
    """The 'low power' in the title: protocol sizing saves switched cap."""

    def test_protocol_cheaper_than_amps_in_power(self, lib, c432_path):
        from repro.analysis.power import estimate_power
        from repro.analysis.activity import estimate_activity
        from repro.timing.critical_paths import apply_path_sizes

        bounds = delay_bounds(c432_path.path, lib)
        tc = 1.2 * bounds.tmin_ps
        ours = distribute_constraint(c432_path.path, lib, tc)
        theirs = amps_distribute_constraint(c432_path.path, lib, tc)

        circuit_ours = load_benchmark("c432")
        apply_path_sizes(circuit_ours, c432_path.gate_names, ours.sizes)
        circuit_amps = load_benchmark("c432")
        apply_path_sizes(circuit_amps, c432_path.gate_names, theirs.sizes)

        activity = estimate_activity(circuit_ours, n_vectors=64)
        p_ours = estimate_power(circuit_ours, lib, activity=activity)
        p_amps = estimate_power(circuit_amps, lib, activity=activity)
        assert p_ours.total_uw <= p_amps.total_uw * 1.02
