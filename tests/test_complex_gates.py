"""Tests for the AOI/OAI complex-gate extension."""

import itertools

import pytest

from repro.cells.gate_types import GateKind, is_inverting, logic_eval, num_inputs
from repro.buffering.flimit import flimit
from repro.netlist.circuit import Circuit, equivalent, exhaustive_vectors
from repro.sizing.bounds import delay_bounds
from repro.timing.path import make_path

COMPLEX = (GateKind.AOI21, GateKind.AOI22, GateKind.OAI21, GateKind.OAI22)


class TestLogic:
    def test_aoi21_truth_table(self):
        for a, b, c in itertools.product([False, True], repeat=3):
            assert logic_eval(GateKind.AOI21, [a, b, c]) == (not ((a and b) or c))

    def test_oai21_truth_table(self):
        for a, b, c in itertools.product([False, True], repeat=3):
            assert logic_eval(GateKind.OAI21, [a, b, c]) == (not ((a or b) and c))

    def test_aoi22_truth_table(self):
        for bits in itertools.product([False, True], repeat=4):
            a, b, c, d = bits
            expected = not ((a and b) or (c and d))
            assert logic_eval(GateKind.AOI22, bits) == expected

    def test_oai22_truth_table(self):
        for bits in itertools.product([False, True], repeat=4):
            a, b, c, d = bits
            expected = not ((a or b) and (c or d))
            assert logic_eval(GateKind.OAI22, bits) == expected

    def test_all_inverting(self):
        for kind in COMPLEX:
            assert is_inverting(kind)

    def test_arities(self):
        assert num_inputs(GateKind.AOI21) == 3
        assert num_inputs(GateKind.OAI22) == 4


class TestComplexGateEquivalence:
    def test_aoi21_equals_discrete_gates(self):
        """AOI21(a,b,c) == NOR2(AND2(a,b), c) -- the structural identity."""
        complex_c = Circuit("cx")
        discrete = Circuit("dx")
        for circuit in (complex_c, discrete):
            for net in ("a", "b", "c"):
                circuit.add_input(net)
        complex_c.add_gate("y", GateKind.AOI21, ["a", "b", "c"])
        complex_c.add_output("y")
        discrete.add_gate("ab", GateKind.AND2, ["a", "b"])
        discrete.add_gate("y", GateKind.NOR2, ["ab", "c"])
        discrete.add_output("y")
        assert equivalent(complex_c, discrete, exhaustive_vectors(["a", "b", "c"]))


class TestComplexGateTiming:
    def test_library_covers_complex_gates(self, lib):
        for kind in COMPLEX:
            cell = lib.cell(kind)
            assert cell.stack_n == 2 and cell.stack_p == 2

    def test_oai_less_efficient_than_aoi(self, lib):
        """The series-P (OAI) stack pays the R penalty: lower Flimit."""
        assert flimit(lib, GateKind.OAI21) < flimit(lib, GateKind.AOI21)

    def test_flimit_between_nand_and_nor(self, lib):
        """Complex gates sit between the simple families in efficiency."""
        f_aoi = flimit(lib, GateKind.AOI21)
        assert flimit(lib, GateKind.NOR3) < f_aoi < flimit(lib, GateKind.INV)

    def test_sizing_engine_handles_complex_paths(self, lib):
        path = make_path(
            [GateKind.INV, GateKind.AOI21, GateKind.INV, GateKind.OAI22,
             GateKind.INV],
            lib,
            cterm_ff=30.0 * lib.cref,
        )
        bounds = delay_bounds(path, lib)
        assert bounds.tmin_ps < bounds.tmax_ps

    def test_simulator_handles_complex_paths(self, lib):
        from repro.spice import SimOptions, simulate_path
        from repro.timing.evaluation import path_delay_ps

        path = make_path(
            [GateKind.INV, GateKind.AOI21, GateKind.INV],
            lib,
            cterm_ff=15.0 * lib.cref,
        )
        sizes = path.min_sizes(lib) * 2.0
        sizes[0] = path.cin_first_ff
        model = path_delay_ps(path, sizes, lib)
        sim = simulate_path(path, sizes, lib, options=SimOptions(n_steps=1500))
        assert sim.path_delay_ps == pytest.approx(model, rel=0.30)
