"""Tests for the constant sensitivity method (section 3.2, eqs. 5-6)."""

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.sizing.bounds import delay_bounds
from repro.sizing.sensitivity import (
    distribute_constraint,
    sensitivity_sweep,
    solve_sensitivity,
)
from repro.timing.evaluation import path_area_um, path_delay_ps
from repro.timing.path import make_path


class TestSolveSensitivity:
    def test_a_zero_recovers_tmin(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        sol = solve_sensitivity(eleven_gate_path, lib, 0.0)
        assert sol.delay_ps == pytest.approx(bounds.tmin_ps, rel=5e-3)

    def test_positive_a_rejected(self, eleven_gate_path, lib):
        with pytest.raises(ValueError):
            solve_sensitivity(eleven_gate_path, lib, 0.1)

    def test_bad_weight_mode(self, eleven_gate_path, lib):
        with pytest.raises(ValueError):
            solve_sensitivity(eleven_gate_path, lib, -0.1, weight_mode="bogus")

    def test_eq6_sensitivity_equalised(self, eleven_gate_path, lib):
        """Eq. 6 literally: the link-equation sensitivity equals ``a`` on
        every unclamped stage at the fixed point.

        (The paper's eq. 6 treats the ``A_i`` as design parameters, i.e.
        the coupling factor is frozen while differentiating; this is the
        same surrogate the solver iterates, so the fixed point must
        satisfy it tightly.)
        """
        from repro.timing.evaluation import effective_a_coeffs

        a = -0.5
        path = eleven_gate_path
        sol = solve_sensitivity(path, lib, a)
        coeffs = effective_a_coeffs(path, sol.sizes, lib)
        mins = path.min_sizes(lib)
        n = len(path)
        for i in range(1, n):
            if sol.sizes[i] <= mins[i] * 1.01:  # clamped at minimum drive
                continue
            ext_i = path.stages[i].cside_ff + (
                sol.sizes[i + 1] if i + 1 < n else path.cterm_ff
            )
            surrogate = (
                coeffs[i - 1] / sol.sizes[i - 1]
                - coeffs[i] * ext_i / sol.sizes[i] ** 2
            )
            assert surrogate == pytest.approx(a, rel=0.02, abs=0.01)

    def test_delay_monotone_in_a(self, eleven_gate_path, lib):
        a_values = np.array([-3.0, -1.0, -0.3, -0.1, 0.0])
        sweep = sensitivity_sweep(eleven_gate_path, lib, a_values)
        delays = [s.delay_ps for s in sweep]
        assert all(b <= a + 1e-6 for a, b in zip(delays, delays[1:]))

    def test_area_monotone_in_a(self, eleven_gate_path, lib):
        a_values = np.array([-3.0, -1.0, -0.3, -0.1, 0.0])
        sweep = sensitivity_sweep(eleven_gate_path, lib, a_values)
        areas = [s.area_um for s in sweep]
        assert all(b >= a - 1e-6 for a, b in zip(areas, areas[1:]))


class TestDistributeConstraint:
    def test_meets_feasible_constraint(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        tc = 1.3 * bounds.tmin_ps
        result = distribute_constraint(eleven_gate_path, lib, tc)
        assert result.feasible
        assert result.achieved_delay_ps <= tc * (1.0 + 1e-6)
        # And tight: no area wasted on unnecessary slack.
        assert result.achieved_delay_ps >= tc * 0.97

    def test_infeasible_reports_tmin(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        result = distribute_constraint(eleven_gate_path, lib, 0.8 * bounds.tmin_ps)
        assert not result.feasible
        assert result.achieved_delay_ps == pytest.approx(bounds.tmin_ps, rel=1e-6)

    def test_loose_constraint_returns_min_area(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        result = distribute_constraint(eleven_gate_path, lib, 2.0 * bounds.tmax_ps)
        np.testing.assert_allclose(
            result.sizes, eleven_gate_path.min_sizes(lib), rtol=1e-9
        )
        assert result.area_um == pytest.approx(bounds.area_tmax_um)

    def test_area_grows_as_constraint_tightens(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        areas = []
        for ratio in (2.2, 1.6, 1.3, 1.1):
            result = distribute_constraint(
                eleven_gate_path, lib, ratio * bounds.tmin_ps
            )
            assert result.feasible
            areas.append(result.area_um)
        assert all(b > a for a, b in zip(areas, areas[1:]))

    def test_slack_property(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        result = distribute_constraint(eleven_gate_path, lib, 1.5 * bounds.tmin_ps)
        assert result.slack_ps == pytest.approx(
            result.tc_ps - result.achieved_delay_ps
        )
        assert result.slack_ps >= -1e-6

    def test_invalid_tc(self, eleven_gate_path, lib):
        with pytest.raises(ValueError):
            distribute_constraint(eleven_gate_path, lib, 0.0)

    def test_frozen_requires_sizes(self, eleven_gate_path, lib):
        frozen = np.zeros(len(eleven_gate_path), dtype=bool)
        with pytest.raises(ValueError):
            distribute_constraint(eleven_gate_path, lib, 1000.0, frozen=frozen)


class TestOptimalityAgainstAlternatives:
    def test_beats_random_feasible_sizings(self, lib, rng):
        """Minimum-area claim: random sizings meeting Tc use more area."""
        path = make_path(
            [GateKind.INV, GateKind.NAND2, GateKind.INV, GateKind.NOR2, GateKind.INV],
            lib,
            cterm_ff=40.0 * lib.cref,
        )
        bounds = delay_bounds(path, lib)
        tc = 1.25 * bounds.tmin_ps
        ours = distribute_constraint(path, lib, tc)
        assert ours.feasible
        n = len(path)
        found_feasible = 0
        for _ in range(400):
            raw = np.exp(rng.uniform(np.log(lib.cref), np.log(200 * lib.cref), n))
            sizes = path.clamp_sizes(raw, lib)
            if path_delay_ps(path, sizes, lib) <= tc:
                found_feasible += 1
                assert path_area_um(path, sizes, lib) >= ours.area_um * 0.999
        assert found_feasible > 0  # the experiment actually exercised sizings

    def test_area_weighting_never_worse_in_sumw(self, eleven_gate_path, lib):
        """The KKT-exact weighting matches or beats uniform on sum W."""
        bounds = delay_bounds(eleven_gate_path, lib)
        tc = 1.3 * bounds.tmin_ps
        uniform = distribute_constraint(eleven_gate_path, lib, tc, "uniform")
        weighted = distribute_constraint(eleven_gate_path, lib, tc, "area")
        assert uniform.feasible and weighted.feasible
        assert weighted.area_um <= uniform.area_um * 1.02
