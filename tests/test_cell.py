"""Unit tests for the characterised cell model."""

import pytest

from repro.cells.cell import Cell
from repro.cells.gate_types import GateKind
from repro.process.technology import CMOS025


@pytest.fixture(scope="module")
def inv():
    return Cell(kind=GateKind.INV, k_ratio=2.0, dw_hl=1.0, dw_lh=1.0, p_intrinsic=0.6)


@pytest.fixture(scope="module")
def nand2():
    return Cell(
        kind=GateKind.NAND2, k_ratio=2.0, dw_hl=1.8, dw_lh=1.2, p_intrinsic=0.8,
        stack_n=2,
    )


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            Cell(kind=GateKind.INV, k_ratio=0.0, dw_hl=1.0, dw_lh=1.0, p_intrinsic=0.5)

    def test_weights_below_inverter_rejected(self):
        with pytest.raises(ValueError):
            Cell(kind=GateKind.INV, k_ratio=2.0, dw_hl=0.5, dw_lh=1.0, p_intrinsic=0.5)

    def test_negative_parasitic(self):
        with pytest.raises(ValueError):
            Cell(kind=GateKind.INV, k_ratio=2.0, dw_hl=1.0, dw_lh=1.0, p_intrinsic=-1)

    def test_stack_heights(self):
        with pytest.raises(ValueError):
            Cell(
                kind=GateKind.INV, k_ratio=2.0, dw_hl=1.0, dw_lh=1.0,
                p_intrinsic=0.5, stack_n=0,
            )


class TestSymmetryFactors:
    def test_inverter_shl(self, inv):
        # S_HL = DW * (1 + k) / 2 = 1.5 for k = 2.
        assert inv.s_hl(CMOS025) == pytest.approx(1.5)

    def test_inverter_slh_carries_r_over_k(self, inv):
        expected = 1.0 * (CMOS025.r_ratio / 2.0) * 3.0 / 2.0
        assert inv.s_lh(CMOS025) == pytest.approx(expected)

    def test_balanced_when_k_equals_r(self):
        balanced = Cell(
            kind=GateKind.INV,
            k_ratio=CMOS025.r_ratio,
            dw_hl=1.0,
            dw_lh=1.0,
            p_intrinsic=0.6,
        )
        assert balanced.s_hl(CMOS025) == pytest.approx(balanced.s_lh(CMOS025))

    def test_logical_weight_multiplies_edge(self, inv, nand2):
        assert nand2.s_hl(CMOS025) == pytest.approx(1.8 * inv.s_hl(CMOS025))


class TestCapacitances:
    def test_coupling_split_by_edge(self, inv):
        cin = 9.0
        rising = inv.coupling_cap(cin, input_rising=True)   # P side: k/(1+k)
        falling = inv.coupling_cap(cin, input_rising=False)  # N side: 1/(1+k)
        assert rising == pytest.approx(0.5 * cin * 2.0 / 3.0)
        assert falling == pytest.approx(0.5 * cin / 3.0)
        assert rising + falling == pytest.approx(0.5 * cin)

    def test_parasitic_proportional(self, inv):
        assert inv.parasitic_cap(10.0) == pytest.approx(6.0)
        assert inv.parasitic_cap(0.0) == 0.0

    def test_negative_cin_rejected(self, inv):
        with pytest.raises(ValueError):
            inv.coupling_cap(-1.0, True)
        with pytest.raises(ValueError):
            inv.parasitic_cap(-1.0)

    def test_cin_min_from_wmin(self, inv):
        expected = CMOS025.cin_for_width(CMOS025.w_min_um * 3.0)
        assert inv.cin_min(CMOS025) == pytest.approx(expected)


class TestGeometry:
    def test_width_scales_with_fanin(self, inv, nand2):
        cin = 12.0
        assert nand2.total_width_um(cin, CMOS025) == pytest.approx(
            2.0 * inv.total_width_um(cin, CMOS025)
        )

    def test_wn_wp_split(self, inv):
        wn, wp = inv.wn_wp_um(9.0, CMOS025)
        assert wp == pytest.approx(2.0 * wn)
        assert wn + wp == pytest.approx(CMOS025.width_for_cin(9.0))
