"""Unit tests for the bounded path data model."""

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.timing.delay_model import Edge
from repro.timing.path import BoundedPath, PathStage, make_path


class TestConstruction:
    def test_make_path_defaults(self, lib):
        path = make_path([GateKind.INV, GateKind.NAND2], lib)
        assert len(path) == 2
        assert path.cin_first_ff == pytest.approx(2.0 * lib.cref)
        assert path.cterm_ff == pytest.approx(8.0 * lib.cref)
        assert path.input_edge is Edge.RISE

    def test_empty_rejected(self, lib):
        with pytest.raises(ValueError):
            make_path([], lib)

    def test_side_loads_must_match(self, lib):
        with pytest.raises(ValueError):
            make_path([GateKind.INV, GateKind.INV], lib, cside_ff=[1.0])

    def test_negative_side_load_rejected(self, lib):
        with pytest.raises(ValueError):
            PathStage(cell=lib.inverter, cside_ff=-1.0)

    def test_bad_boundaries(self, lib):
        stage = PathStage(cell=lib.inverter)
        with pytest.raises(ValueError):
            BoundedPath(stages=(stage,), cin_first_ff=0.0, cterm_ff=10.0)
        with pytest.raises(ValueError):
            BoundedPath(stages=(stage,), cin_first_ff=5.0, cterm_ff=-1.0)
        with pytest.raises(ValueError):
            BoundedPath(stages=(), cin_first_ff=5.0, cterm_ff=1.0)


class TestPolarityChain:
    def test_edges_alternate_through_inverters(self, lib):
        path = make_path([GateKind.INV] * 4, lib)
        assert path.edge_at(0) is Edge.RISE
        assert path.edge_at(1) is Edge.FALL
        assert path.edge_at(2) is Edge.RISE
        assert path.edge_at(3) is Edge.FALL

    def test_non_inverting_preserves_edge(self, lib):
        path = make_path([GateKind.AND2, GateKind.INV], lib)
        assert path.edge_at(0) is Edge.RISE
        assert path.edge_at(1) is Edge.RISE


class TestSizeVectors:
    def test_min_sizes_pins_first(self, short_path, lib):
        sizes = short_path.min_sizes(lib)
        assert sizes[0] == pytest.approx(short_path.cin_first_ff)
        for i, stage in enumerate(short_path.stages[1:], start=1):
            assert sizes[i] == pytest.approx(stage.cell.cin_min(lib.tech))

    def test_clamp_projects_to_box(self, short_path, lib):
        raw = np.full(len(short_path), 0.01)
        clamped = short_path.clamp_sizes(raw, lib)
        assert clamped[0] == pytest.approx(short_path.cin_first_ff)
        for i, stage in enumerate(short_path.stages[1:], start=1):
            assert clamped[i] >= stage.cell.cin_min(lib.tech)

    def test_clamp_shape_checked(self, short_path, lib):
        with pytest.raises(ValueError):
            short_path.clamp_sizes([1.0, 2.0], lib)


class TestStructuralEdits:
    def test_insert(self, short_path, lib):
        stage = PathStage(cell=lib.inverter, name="buf")
        longer = short_path.with_stage_inserted(2, stage)
        assert len(longer) == len(short_path) + 1
        assert longer.stages[2].name == "buf"
        # Original untouched.
        assert len(short_path) == 4

    def test_insert_bounds_checked(self, short_path, lib):
        stage = PathStage(cell=lib.inverter)
        with pytest.raises(ValueError):
            short_path.with_stage_inserted(99, stage)

    def test_replace(self, short_path, lib):
        stage = PathStage(cell=lib.cell(GateKind.NAND3), name="sub")
        edited = short_path.with_stage_replaced(1, stage)
        assert edited.stages[1].cell.kind is GateKind.NAND3
        assert short_path.stages[1].cell.kind is GateKind.NAND2

    def test_replace_bounds_checked(self, short_path, lib):
        stage = PathStage(cell=lib.inverter)
        with pytest.raises(ValueError):
            short_path.with_stage_replaced(4, stage)

    def test_terminal_load_swap(self, short_path):
        heavier = short_path.with_terminal_load(500.0)
        assert heavier.cterm_ff == 500.0
        assert heavier.stages == short_path.stages

    def test_kinds_view(self, short_path):
        assert short_path.kinds == (
            GateKind.INV, GateKind.NAND2, GateKind.NOR2, GateKind.INV,
        )
