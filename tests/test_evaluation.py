"""Unit tests for path evaluation, coefficients and gradients."""

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.timing.delay_model import Edge, gate_delay
from repro.timing.evaluation import (
    delay_gradient,
    effective_a_coeffs,
    evaluate_path,
    path_area_um,
    path_delay_ps,
    stage_external_loads,
    stage_fanout_ratios,
)
from repro.timing.path import make_path


class TestEvaluatePath:
    def test_single_stage_matches_gate_delay(self, lib):
        path = make_path([GateKind.NAND2], lib, cin_first_ff=8.0, cterm_ff=40.0)
        timing = evaluate_path(path, [8.0], lib)
        direct = gate_delay(
            lib.cell(GateKind.NAND2), lib.tech, 8.0, 40.0, 0.0, Edge.RISE
        )
        assert timing.total_delay_ps == pytest.approx(direct.delay_ps)
        assert timing.stage_tout_ps[0] == pytest.approx(direct.tout_ps)

    def test_total_is_sum_of_stages(self, eleven_gate_path, lib):
        sizes = eleven_gate_path.min_sizes(lib) * 2.0
        timing = evaluate_path(eleven_gate_path, sizes, lib)
        assert timing.total_delay_ps == pytest.approx(sum(timing.stage_delays_ps))

    def test_slews_chain(self, lib):
        """Stage i's input transition is stage i-1's output transition."""
        path = make_path([GateKind.INV, GateKind.INV], lib, cterm_ff=30.0)
        sizes = path.min_sizes(lib)
        timing = evaluate_path(path, sizes, lib)
        second = gate_delay(
            lib.inverter,
            lib.tech,
            sizes[1],
            path.cterm_ff,
            timing.stage_tout_ps[0],
            Edge.FALL,
        )
        assert timing.stage_delays_ps[1] == pytest.approx(second.delay_ps)

    def test_first_size_is_pinned(self, short_path, lib):
        sizes = short_path.min_sizes(lib)
        tampered = sizes.copy()
        tampered[0] *= 10.0
        assert path_delay_ps(short_path, tampered, lib) == pytest.approx(
            path_delay_ps(short_path, sizes, lib)
        )

    def test_rejects_bad_shapes_and_values(self, short_path, lib):
        with pytest.raises(ValueError):
            evaluate_path(short_path, [1.0], lib)
        bad = short_path.min_sizes(lib)
        bad[2] = -1.0
        with pytest.raises(ValueError):
            evaluate_path(short_path, bad, lib)

    def test_side_load_slows_stage(self, lib):
        bare = make_path([GateKind.INV, GateKind.INV], lib, cterm_ff=30.0)
        loaded = make_path(
            [GateKind.INV, GateKind.INV], lib, cterm_ff=30.0, cside_ff=[50.0, 0.0]
        )
        sizes = bare.min_sizes(lib)
        assert path_delay_ps(loaded, sizes, lib) > path_delay_ps(bare, sizes, lib)


class TestLoadsAndRatios:
    def test_external_loads(self, lib):
        path = make_path(
            [GateKind.INV, GateKind.INV], lib, cterm_ff=30.0, cside_ff=[5.0, 7.0]
        )
        sizes = np.array([path.cin_first_ff, 12.0])
        loads = stage_external_loads(path, sizes)
        assert loads[0] == pytest.approx(5.0 + 12.0)
        assert loads[1] == pytest.approx(7.0 + 30.0)

    def test_fanout_ratios(self, lib):
        path = make_path([GateKind.INV], lib, cin_first_ff=10.0, cterm_ff=40.0)
        ratios = stage_fanout_ratios(path, np.array([10.0]))
        assert ratios[0] == pytest.approx(4.0)


class TestArea:
    def test_area_sums_cell_widths(self, lib):
        path = make_path([GateKind.INV, GateKind.NAND2], lib)
        sizes = np.array([path.cin_first_ff, 9.0])
        expected = lib.inverter.total_width_um(sizes[0], lib.tech) + lib.cell(
            GateKind.NAND2
        ).total_width_um(9.0, lib.tech)
        assert path_area_um(path, sizes, lib) == pytest.approx(expected)

    def test_area_shape_checked(self, short_path, lib):
        with pytest.raises(ValueError):
            path_area_um(short_path, [1.0, 2.0], lib)


class TestGradientAndCoeffs:
    def test_coeffs_reconstruct_total_delay(self, eleven_gate_path, lib):
        """T == sum_i A_i * C_L_total(i) / C_IN(i) + input-slope term.

        The effective coefficients bundle each stage's coupling factor and
        its slope contribution to the next stage, so summing the load
        terms reproduces the exact eq. 1 path delay.
        """
        path = eleven_gate_path
        sizes = path.min_sizes(lib) * 3.0
        sizes[0] = path.cin_first_ff
        timing = evaluate_path(path, sizes, lib)
        coeffs = effective_a_coeffs(path, sizes, lib)
        reconstructed = sum(
            coeffs[i] * timing.stage_loads_ff[i] / sizes[i]
            for i in range(len(path))
        )
        # tin_first is zero for this path, so no extra input-slope term.
        assert reconstructed == pytest.approx(timing.total_delay_ps, rel=1e-9)

    def test_link_gradient_direction_agrees(self, eleven_gate_path, lib):
        """The frozen-A gradient surrogate used by eq. 4 points the same
        way as the exact gradient on its dominant components (the Miller
        derivative it drops is a second-order correction)."""
        path = eleven_gate_path
        sizes = path.min_sizes(lib) * 3.0
        sizes[0] = path.cin_first_ff
        grad = delay_gradient(path, sizes, lib)
        coeffs = effective_a_coeffs(path, sizes, lib)
        n = len(path)
        scale = float(np.abs(grad[1:]).max())
        for i in range(1, n):
            ext_i = path.stages[i].cside_ff + (
                sizes[i + 1] if i + 1 < n else path.cterm_ff
            )
            analytic = coeffs[i - 1] / sizes[i - 1] - coeffs[i] * ext_i / sizes[i] ** 2
            if abs(grad[i]) > 0.2 * scale:
                assert np.sign(analytic) == np.sign(grad[i])

    def test_gradient_component_zero_for_pinned_first(self, short_path, lib):
        grad = delay_gradient(short_path, short_path.min_sizes(lib), lib)
        assert grad[0] == 0.0

    def test_gradient_at_min_sizes_flags_the_loaded_tail(self, eleven_gate_path, lib):
        """At minimum drives the terminal-load-facing stage dominates: the
        last gate's sensitivity is strongly negative (upsizing it helps),
        even though mid-path components can be positive (upsizing a gate
        also loads its predecessor)."""
        grad = delay_gradient(
            eleven_gate_path, eleven_gate_path.min_sizes(lib), lib
        )
        assert grad[-1] < 0
        assert grad[-1] == min(grad[1:])
        assert np.any(grad[1:] < 0)

    def test_coeffs_positive(self, eleven_gate_path, lib):
        coeffs = effective_a_coeffs(
            eleven_gate_path, eleven_gate_path.min_sizes(lib), lib
        )
        assert np.all(coeffs > 0)


class TestAnalyticGradient:
    def test_matches_central_differences(self, eleven_gate_path, lib, rng):
        """The closed-form O(n) gradient equals finite differences."""
        from repro.timing.evaluation import delay_gradient_numeric

        for _ in range(5):
            scales = np.exp(rng.uniform(0.0, 3.5, len(eleven_gate_path)))
            sizes = eleven_gate_path.clamp_sizes(
                eleven_gate_path.min_sizes(lib) * scales, lib
            )
            analytic = delay_gradient(eleven_gate_path, sizes, lib)
            numeric = delay_gradient_numeric(eleven_gate_path, sizes, lib)
            np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)
