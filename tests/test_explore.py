"""Sweep subsystem: spec expansion, Pareto, campaign store, warm runner.

The load-bearing guarantee is *determinism*: a warm-started sweep (shared
session caches, neighbour-seeded engines, memoized bounds) must produce
record payloads byte-identical to cold, independent per-point runs, and a
resumed campaign must serve journaled points byte-identically too.
"""

import json
import os

import pytest

from repro.analysis.pareto import dominates, pareto_indices
from repro.api import JobError, Session, SweepSpec
from repro.explore import CampaignError, CampaignStore, run_sweep

#: A small, fast grid (fpd is the 60-gate paper example; two passes are
#: plenty to exercise the warm-start machinery).
SPEC = SweepSpec(
    benchmarks=("fpd",),
    tc_ratio_points=(1.2, 1.5, 1.8),
    k_paths=2,
    max_passes=2,
)


def payload_bytes(record) -> bytes:
    return json.dumps(
        record.to_dict(with_timing=False), sort_keys=True
    ).encode("utf-8")


@pytest.fixture(scope="module")
def warm_result():
    """One warm sweep shared by the read-only assertions below."""
    return run_sweep(Session(), SPEC)


class TestSweepSpec:
    def test_expansion_covers_the_grid_in_warm_order(self):
        spec = SweepSpec(
            benchmarks=("fpd", "c432"),
            tc_ratio_points=(1.5, 1.1),
            weight_modes=("uniform", "area"),
            restructuring=(True, False),
        )
        jobs = spec.jobs()
        assert len(jobs) == spec.point_count == 2 * 2 * 2 * 2
        # Benchmarks contiguous, constraints ascending inside each combo.
        assert [j.benchmark for j in jobs[:8]] == ["fpd"] * 8
        assert jobs[0].tc_ratio == 1.1 and jobs[1].tc_ratio == 1.5
        # Labels are unique and deterministic.
        labels = [j.label for j in jobs]
        assert len(set(labels)) == len(labels)
        assert labels[0] == "fpd/r1.1/uniform/dm"

    def test_label_prefix(self):
        spec = SweepSpec(
            benchmarks=("fpd",), tc_ps_points=(900.0,), label="night42"
        )
        assert spec.jobs()[0].label == "night42:fpd/ps900/uniform/dm"

    def test_round_trip(self):
        spec = SweepSpec(
            benchmarks=("c432",),
            tc_ps_points=(800.0, 1200.0),
            scope="path",
            weight_modes=("area",),
            restructuring=(False,),
            label="x",
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},  # no benchmarks
            {"benchmarks": ("fpd",)},  # no constraint axis
            {
                "benchmarks": ("fpd",),
                "tc_ps_points": (1.0,),
                "tc_ratio_points": (1.5,),
            },
            {"benchmarks": ("fpd", "fpd"), "tc_ratio_points": (1.5,)},
            {"benchmarks": ("fpd",), "tc_ratio_points": (-1.0,)},
            {"benchmarks": ("fpd",), "tc_ratio_points": (1.5, 1.5)},
            # Distinct floats whose %g renderings collide: the labels
            # (the resume/record identity) would silently merge.
            {"benchmarks": ("fpd",), "tc_ps_points": (1234.567, 1234.5671)},
            {"benchmarks": ("fpd",), "tc_ratio_points": (1.5,), "scope": "net"},
            {
                "benchmarks": ("fpd",),
                "tc_ratio_points": (1.5,),
                "weight_modes": ("heavy",),
            },
            {
                "benchmarks": ("fpd",),
                "tc_ratio_points": (1.5,),
                "restructuring": (),
            },
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(JobError):
            SweepSpec(**kwargs)


class TestPareto:
    def test_dominates(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))  # equal: no strict edge

    def test_none_is_incomparable(self):
        # The comparable coordinate decides; None coordinates are skipped.
        assert dominates((1.0, None), (2.0, None))
        assert dominates((1.0, 0.0), (2.0, None))

    def test_none_objectives(self):
        # Only the comparable coordinates count.
        assert dominates((1.0, None, 5.0), (2.0, 3.0, 5.0))
        assert not dominates((None, None), (None, None))

    def test_pareto_indices_keep_ties_and_order(self):
        points = [(2.0, 1.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))


class TestWarmDeterminism:
    def test_warm_sweep_matches_cold_independent_jobs(self, warm_result):
        # The acceptance bar: byte-identical payloads against cold runs,
        # each in its own fresh session (no shared caches at all).
        for job, record in zip(SPEC.jobs(), warm_result.records):
            cold = Session().optimize(job)
            assert payload_bytes(record) == payload_bytes(cold)

    def test_summary_covers_every_point(self, warm_result):
        summary = warm_result.summary
        assert len(summary) == SPEC.point_count
        labels = {p.label for p in summary.points}
        assert {j.label for j in SPEC.jobs()} == labels
        # Circuit-scope points carry the power objective.
        assert all(p.power_uw is not None for p in summary.points)
        # The frontier is a non-empty subset of the grid.
        frontier = set(summary.frontier_labels())
        assert frontier and frontier <= labels

    def test_tighter_constraints_cost_area(self, warm_result):
        by_tc = sorted(warm_result.summary.points, key=lambda p: p.tc_ps)
        assert by_tc[0].area_um >= by_tc[-1].area_um

    def test_summary_round_trip(self, warm_result):
        from repro.explore.summary import SweepSummary

        data = warm_result.summary.to_dict()
        again = SweepSummary.from_dict(json.loads(json.dumps(data)))
        assert again == warm_result.summary
        assert again.frontier_labels() == warm_result.summary.frontier_labels()

    def test_sweep_record_is_json_native(self, warm_result):
        from repro.api import RunRecord

        envelope = warm_result.record()
        again = RunRecord.from_json(envelope.to_json())
        assert again.payload == envelope.payload
        assert again.extra["points"] == SPEC.point_count

    def test_yield_column_off_by_default(self, warm_result):
        assert all(p.yield_frac is None for p in warm_result.summary.points)


class TestYieldObjective:
    @pytest.fixture(scope="class")
    def yielded(self):
        return run_sweep(Session(), SPEC, with_yield=True)

    def test_every_circuit_point_carries_a_yield(self, yielded):
        assert all(
            p.yield_frac is not None and 0.0 <= p.yield_frac <= 1.0
            for p in yielded.summary.points
        )

    def test_yield_does_not_change_the_records(self, yielded, warm_result):
        # The yield column is a summary annotation, never a payload edit.
        for a, b in zip(yielded.records, warm_result.records):
            assert payload_bytes(a) == payload_bytes(b)

    def test_yield_matches_direct_batch_evaluation(self, yielded):
        # The column is exactly the batch engine's yield of each point's
        # optimized netlist at its own Tc (same corner draw).
        from repro.explore.runner import YIELD_SAMPLES, YIELD_SEED
        from repro.mc import batch_analyze, compile_circuit, sample_corners

        session = Session()
        corners = sample_corners(
            session.library.tech, n_samples=YIELD_SAMPLES, seed=YIELD_SEED
        )
        for record, point in zip(yielded.records, yielded.summary.points):
            compiled = compile_circuit(record.payload.circuit, session.library)
            expected = batch_analyze(compiled, corners).yield_at(point.tc_ps)
            assert point.yield_frac == expected

    def test_nominally_infeasible_points_fail_most_corners(self, yielded):
        # Every point of this tight grid misses its Tc nominally, so no
        # corner majority can meet it either.
        for point in yielded.summary.points:
            assert not point.feasible and point.delay_ps > point.tc_ps
            assert point.yield_frac < 0.5

    def test_yield_survives_summary_round_trip(self, yielded):
        from repro.explore.summary import SweepSummary

        data = yielded.summary.to_dict()
        again = SweepSummary.from_dict(json.loads(json.dumps(data)))
        assert again == yielded.summary

    def test_old_summaries_without_yield_still_load(self, warm_result):
        from repro.explore.summary import SweepSummary

        data = warm_result.summary.to_dict()
        for point in data["points"]:
            del point["yield_frac"]  # a pre-yield-era archive
        again = SweepSummary.from_dict(data)
        assert all(p.yield_frac is None for p in again.points)

    def test_yield_axis_enters_dominance(self):
        # Two points equal on delay/area/power: the higher yield must
        # dominate once the fourth axis is populated.
        from repro.analysis.pareto import dominates

        assert dominates((1.0, 1.0, 1.0, -0.99), (1.0, 1.0, 1.0, -0.90))
        assert not dominates((1.0, 1.0, 1.0, None), (1.0, 1.0, 1.0, -0.9))


class TestCampaignStore:
    def test_journal_and_resume_skip_completed(self, tmp_path):
        root = str(tmp_path / "camp")
        session = Session()
        first = run_sweep(session, SPEC, store=root)
        assert first.computed == SPEC.point_count
        # Re-running with resume computes nothing and serves the journal.
        again = run_sweep(session, SPEC, store=root, resume=True)
        assert again.computed == 0
        assert again.resumed == SPEC.point_count
        for a, b in zip(first.records, again.records):
            assert payload_bytes(a) == payload_bytes(b)

    def test_torn_tail_line_is_recomputed(self, tmp_path):
        root = str(tmp_path / "camp")
        session = Session()
        first = run_sweep(session, SPEC, store=root)
        store = CampaignStore(root)
        with open(store.records_path, encoding="utf-8") as handle:
            lines = handle.readlines()
        # Simulate a crash mid-append: the last line is torn.
        with open(store.records_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][: len(lines[-1]) // 2])
        resumed = run_sweep(session, SPEC, store=root, resume=True)
        assert resumed.computed == 1
        assert resumed.resumed == SPEC.point_count - 1
        for a, b in zip(first.records, resumed.records):
            assert payload_bytes(a) == payload_bytes(b)

    def test_unresumed_reuse_is_refused(self, tmp_path):
        root = str(tmp_path / "camp")
        run_sweep(Session(), SPEC, store=root)
        with pytest.raises(CampaignError, match="resume"):
            run_sweep(Session(), SPEC, store=root)

    def test_spec_mismatch_is_refused(self, tmp_path):
        root = str(tmp_path / "camp")
        store = CampaignStore(root)
        store.initialize(SPEC)
        other = SweepSpec(benchmarks=("c432",), tc_ratio_points=(1.5,))
        with pytest.raises(CampaignError, match="different sweep"):
            store.initialize(other)
        assert store.spec() == SPEC

    def test_points_before_a_failing_job_stay_journaled(self, tmp_path):
        """A mid-campaign crash loses at most the in-flight point."""
        root = str(tmp_path / "camp")
        bad = SweepSpec(
            benchmarks=("fpd", "c0000"),  # c0000 does not exist
            tc_ratio_points=SPEC.tc_ratio_points,
            k_paths=SPEC.k_paths,
            max_passes=SPEC.max_passes,
        )
        with pytest.raises(KeyError):
            run_sweep(Session(), bad, store=root)
        # The fpd chunk completed before the failure: all three of its
        # points are in the journal and a resume serves them from disk.
        completed = CampaignStore(root).completed_labels()
        assert {label.split("/")[0] for label in completed} == {"fpd"}
        assert len(completed) == 3
        with pytest.raises(KeyError):
            run_sweep(Session(), bad, store=root, resume=True)
        # The resumed attempt recomputed nothing for fpd.
        assert len(CampaignStore(root).completed_labels()) == 3

    def test_manifest_written_once(self, tmp_path):
        root = str(tmp_path / "camp")
        store = CampaignStore(root)
        store.initialize(SPEC)
        assert os.path.exists(store.manifest_path)
        store.initialize(SPEC)  # idempotent
        assert store.completed_labels() == {}


class TestChunkedScheduler:
    def test_chunking_respects_benchmark_groups(self):
        from repro.explore.runner import _chunks

        spec = SweepSpec(
            benchmarks=("fpd", "c432"), tc_ratio_points=(1.1, 1.4, 1.7)
        )
        jobs = spec.jobs()
        groups = _chunks(jobs, None)
        assert [len(g) for g in groups] == [3, 3]
        split = _chunks(jobs, 2)
        assert [len(g) for g in split] == [2, 1, 2, 1]
        # No chunk ever mixes benchmarks (warm state is per-netlist).
        for chunk in split:
            assert len({j.benchmark for j in chunk}) == 1

    def test_parallel_workers_match_serial(self, warm_result):
        # Worker pools fall back to the serial loop transparently where
        # subprocesses are unavailable; payloads are identical either way.
        result = run_sweep(Session(), SPEC, workers=2, chunk_size=2)
        for a, b in zip(warm_result.records, result.records):
            assert payload_bytes(a) == payload_bytes(b)

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_sweep(
            Session(),
            SPEC,
            progress=lambda done, total, label: seen.append((done, total, label)),
        )
        assert [s[0] for s in seen] == [1, 2, 3]
        assert all(s[1] == SPEC.point_count for s in seen)
