"""Tests for the Tmin / Tmax delay bounds (section 3.1, eq. 4, Fig. 1)."""

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.sizing.bounds import delay_bounds, max_delay_bound, min_delay_bound
from repro.timing.evaluation import delay_gradient, path_delay_ps
from repro.timing.path import make_path


class TestTmax:
    def test_tmax_is_min_sizing_delay(self, eleven_gate_path, lib):
        tmax, sizes = max_delay_bound(eleven_gate_path, lib)
        assert tmax == pytest.approx(
            path_delay_ps(eleven_gate_path, eleven_gate_path.min_sizes(lib), lib)
        )
        np.testing.assert_allclose(sizes, eleven_gate_path.min_sizes(lib))


class TestTmin:
    def test_window_ordering(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        assert bounds.tmin_ps < bounds.tmax_ps
        assert bounds.area_tmin_um > bounds.area_tmax_um

    def test_stationarity(self, eleven_gate_path, lib):
        """Tmin is a genuine stationary point of the exact model."""
        bounds = delay_bounds(eleven_gate_path, lib)
        grad = delay_gradient(eleven_gate_path, bounds.sizes_tmin, lib)
        scale = bounds.tmin_ps / float(np.mean(bounds.sizes_tmin))
        assert float(np.abs(grad[1:]).max()) < 0.02 * scale

    def test_lower_bound_against_random_sizings(self, eleven_gate_path, lib, rng):
        """Convexity: no sizing beats the eq. 4 fixed point."""
        bounds = delay_bounds(eleven_gate_path, lib)
        n = len(eleven_gate_path)
        for _ in range(100):
            raw = np.exp(rng.uniform(np.log(lib.cref), np.log(300 * lib.cref), n))
            sizes = eleven_gate_path.clamp_sizes(raw, lib)
            assert (
                path_delay_ps(eleven_gate_path, sizes, lib)
                >= bounds.tmin_ps - 1e-6
            )

    def test_cref_seed_independence(self, eleven_gate_path, lib):
        """The paper's observation: Tmin does not depend on the seed drive."""
        t_small, _, _, _ = min_delay_bound(eleven_gate_path, lib, cref_ff=lib.cref)
        t_big, _, _, _ = min_delay_bound(
            eleven_gate_path, lib, cref_ff=20.0 * lib.cref
        )
        assert t_small == pytest.approx(t_big, rel=1e-4)

    def test_single_stage_path(self, lib):
        """With no free gate, Tmin == Tmax."""
        path = make_path([GateKind.INV], lib)
        bounds = delay_bounds(path, lib)
        assert bounds.tmin_ps == pytest.approx(bounds.tmax_ps)

    def test_invalid_cref(self, eleven_gate_path, lib):
        with pytest.raises(ValueError):
            min_delay_bound(eleven_gate_path, lib, cref_ff=0.0)

    def test_history_converges_downward(self, eleven_gate_path, lib):
        """The Fig. 1 trajectory: delay decreases sweep over sweep."""
        bounds = delay_bounds(eleven_gate_path, lib)
        delays = [point.delay_ps for point in bounds.history]
        assert len(delays) >= 3
        # Monotone decrease after the initial backward-pass point (up to
        # the sub-millipico oscillation of the fixed point near optimum).
        assert all(b <= a + 1e-3 for a, b in zip(delays[1:], delays[2:]))
        assert delays[-1] == pytest.approx(bounds.tmin_ps)

    def test_history_tracks_capacitance_growth(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        first, last = bounds.history[0], bounds.history[-1]
        assert last.total_cin_over_cref > first.total_cin_over_cref * 0.5
        assert last.delay_ps < first.delay_ps

    def test_feasibility_predicate(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        assert bounds.feasible(bounds.tmin_ps * 1.5)
        assert not bounds.feasible(bounds.tmin_ps * 0.9)

    def test_frozen_stage_respected(self, eleven_gate_path, lib):
        frozen = np.zeros(len(eleven_gate_path), dtype=bool)
        frozen[4] = True
        start = eleven_gate_path.min_sizes(lib)
        start[4] = 7.0 * lib.cref
        _, sizes, _, _ = min_delay_bound(
            eleven_gate_path, lib, start_sizes=start, frozen=frozen
        )
        assert sizes[4] == pytest.approx(7.0 * lib.cref)

    def test_frozen_tmin_never_beats_free(self, eleven_gate_path, lib):
        t_free, _, _, _ = min_delay_bound(eleven_gate_path, lib)
        frozen = np.zeros(len(eleven_gate_path), dtype=bool)
        frozen[3] = True
        start = eleven_gate_path.min_sizes(lib)
        t_frozen, _, _, _ = min_delay_bound(
            eleven_gate_path, lib, start_sizes=start, frozen=frozen
        )
        assert t_frozen >= t_free - 1e-6


class TestHeavyTerminalLoad:
    def test_tmin_grows_with_terminal_load(self, lib):
        kinds = [GateKind.INV, GateKind.NAND2, GateKind.INV]
        light = make_path(kinds, lib, cterm_ff=10.0 * lib.cref)
        heavy = make_path(kinds, lib, cterm_ff=100.0 * lib.cref)
        t_light, _, _, _ = min_delay_bound(light, lib)
        t_heavy, _, _, _ = min_delay_bound(heavy, lib)
        assert t_heavy > t_light
