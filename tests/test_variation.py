"""Tests for the process-variation Monte-Carlo extension."""

import numpy as np
import pytest

from repro.analysis.variation import (
    VariationSpec,
    _scalar_corner_samples,
    delay_distribution,
    perturbed_technology,
    required_guard_band,
)
from repro.cells.gate_types import GateKind
from repro.process.technology import CMOS025
from repro.sizing.bounds import min_delay_bound
from repro.timing.path import make_path


@pytest.fixture(scope="module")
def sized_path(lib):
    path = make_path(
        [GateKind.INV, GateKind.NAND2, GateKind.NOR2, GateKind.INV],
        lib,
        cterm_ff=25.0 * lib.cref,
    )
    _, sizes, _, _ = min_delay_bound(path, lib)
    return path, sizes


class TestSpec:
    def test_defaults_valid(self):
        VariationSpec()

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            VariationSpec(tau_sigma=0.7)
        with pytest.raises(ValueError):
            VariationSpec(vt_sigma=-0.1)


class TestPerturbation:
    def test_zero_sigma_is_identity(self):
        rng = np.random.default_rng(0)
        spec = VariationSpec(0.0, 0.0, 0.0, 0.0, 0.0)
        corner = perturbed_technology(CMOS025, spec, rng)
        assert corner.tau_ps == CMOS025.tau_ps
        assert corner.r_ratio == CMOS025.r_ratio

    def test_corners_stay_physical(self):
        rng = np.random.default_rng(1)
        spec = VariationSpec()
        for _ in range(100):
            corner = perturbed_technology(CMOS025, spec, rng)
            assert corner.tau_ps > 0
            assert 0 < corner.vtn < corner.vdd
            assert 0 < corner.vtp < corner.vdd


class TestDistribution:
    def test_statistics_sane(self, lib, sized_path):
        path, sizes = sized_path
        dist = delay_distribution(path, sizes, lib, n_samples=200)
        assert dist.p01_ps <= dist.p50_ps <= dist.p99_ps
        assert dist.mean_ps == pytest.approx(dist.nominal_ps, rel=0.15)
        assert dist.std_ps > 0
        assert dist.guard_band > 1.0

    def test_deterministic(self, lib, sized_path):
        path, sizes = sized_path
        a = delay_distribution(path, sizes, lib, n_samples=50, seed=3)
        b = delay_distribution(path, sizes, lib, n_samples=50, seed=3)
        np.testing.assert_allclose(a.samples_ps, b.samples_ps)

    def test_wider_spread_wider_distribution(self, lib, sized_path):
        path, sizes = sized_path
        tight = delay_distribution(
            path, sizes, lib, spec=VariationSpec(tau_sigma=0.02),
            n_samples=150,
        )
        loose = delay_distribution(
            path, sizes, lib, spec=VariationSpec(tau_sigma=0.12),
            n_samples=150,
        )
        assert loose.std_ps > tight.std_ps

    def test_yield_monotone_in_tc(self, lib, sized_path):
        path, sizes = sized_path
        dist = delay_distribution(path, sizes, lib, n_samples=200)
        yields = [dist.yield_at(tc) for tc in
                  (dist.p01_ps, dist.p50_ps, float(dist.samples_ps.max()))]
        assert yields[0] <= yields[1] <= yields[2]
        assert yields[2] == pytest.approx(1.0)

    def test_yield_validation(self, lib, sized_path):
        path, sizes = sized_path
        dist = delay_distribution(path, sizes, lib, n_samples=20)
        with pytest.raises(ValueError):
            dist.yield_at(0.0)

    def test_sample_count_validated(self, lib, sized_path):
        path, sizes = sized_path
        with pytest.raises(ValueError):
            delay_distribution(path, sizes, lib, n_samples=1)


class TestBatchReroute:
    """``delay_distribution`` now runs on the vectorized corner kernel.

    The contract against the retired per-corner loop (kept as
    ``_scalar_corner_samples``): identical samples within 1e-12
    relative.  In practice the agreement is *bit-exact* -- the array
    sampler reproduces the scalar loop's rng stream draw for draw and
    the kernel preserves its operation order -- but the documented
    (portable) contract is the pinned tolerance, guarding against a
    platform or numpy release whose ``Generator.normal`` composes the
    ziggurat draw differently.
    """

    def test_matches_scalar_loop(self, lib, sized_path):
        path, sizes = sized_path
        dist = delay_distribution(path, sizes, lib, n_samples=120, seed=17)
        scalar = _scalar_corner_samples(
            path, sizes, lib, VariationSpec(), 120, 17
        )
        np.testing.assert_allclose(
            dist.samples_ps, scalar, rtol=1e-12, atol=0.0
        )

    def test_matches_scalar_loop_with_inactive_sigmas(self, lib, sized_path):
        # Zero sigmas skip rng draws in the scalar loop; the array
        # sampler must skip the very same stream positions.
        path, sizes = sized_path
        spec = VariationSpec(tau_sigma=0.0, c_junction_sigma=0.0)
        dist = delay_distribution(
            path, sizes, lib, spec=spec, n_samples=80, seed=23
        )
        scalar = _scalar_corner_samples(path, sizes, lib, spec, 80, 23)
        np.testing.assert_allclose(
            dist.samples_ps, scalar, rtol=1e-12, atol=0.0
        )

    def test_guard_band_unchanged_by_reroute(self, lib, sized_path):
        # required_guard_band flows through the batch kernel too; its
        # value must equal the one computed from the scalar samples.
        path, sizes = sized_path
        band = required_guard_band(path, sizes, lib, n_samples=120)
        scalar = _scalar_corner_samples(
            path, sizes, lib, VariationSpec(), 120, 42
        )
        nominal = delay_distribution(
            path, sizes, lib, n_samples=2
        ).nominal_ps
        expected = float(np.percentile(scalar, 99)) / nominal
        assert band == pytest.approx(expected, rel=1e-12)


class TestGuardBand:
    def test_guard_band_above_one(self, lib, sized_path):
        path, sizes = sized_path
        band = required_guard_band(path, sizes, lib, n_samples=200)
        assert 1.0 < band < 1.5

    def test_target_yield_validated(self, lib, sized_path):
        path, sizes = sized_path
        with pytest.raises(ValueError):
            required_guard_band(path, sizes, lib, target_yield=1.5)

    def test_higher_yield_needs_more_margin(self, lib, sized_path):
        path, sizes = sized_path
        b50 = required_guard_band(path, sizes, lib, target_yield=0.5,
                                  n_samples=200)
        b99 = required_guard_band(path, sizes, lib, target_yield=0.99,
                                  n_samples=200)
        assert b99 > b50
