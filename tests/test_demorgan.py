"""Tests for the De Morgan restructuring engine (section 4.2, Table 4)."""

import pytest

from repro.cells.gate_types import GateKind
from repro.netlist.circuit import Circuit, equivalent, exhaustive_vectors
from repro.restructuring.demorgan import (
    demorgan_nand_to_nor,
    demorgan_nor_to_nand,
    distribute_with_restructuring,
    restructurable_stages,
    restructure_path,
    rewrite_all_nors,
)
from repro.sizing.bounds import min_delay_bound
from repro.timing.path import make_path


@pytest.fixture()
def nor_heavy_path(lib):
    """A path whose NOR carries a hot node -- the Table 4 scenario."""
    return make_path(
        [GateKind.INV, GateKind.NOR2, GateKind.NAND2, GateKind.NOR3, GateKind.INV],
        lib,
        cterm_ff=10.0 * lib.cref,
        cside_ff=[0.0, 250.0 * lib.cref, 0.0, 120.0 * lib.cref, 0.0],
    )


class TestPathRewrite:
    def test_candidates_found(self, nor_heavy_path):
        assert restructurable_stages(nor_heavy_path) == [1, 3]

    def test_rewrite_structure(self, lib, nor_heavy_path):
        result = restructure_path(nor_heavy_path, lib, indices=[1])
        # NOR2 -> INV + NAND2 + INV: two extra stages.
        assert len(result.path) == len(nor_heavy_path) + 2
        kinds = result.path.kinds
        assert kinds[1] is GateKind.INV
        assert kinds[2] is GateKind.NAND2
        assert kinds[3] is GateKind.INV

    def test_polarity_preserved(self, lib, nor_heavy_path):
        """INV-NAND-INV has the same inversion parity as the NOR it
        replaces, so the path output polarity is unchanged."""
        original_edge = nor_heavy_path.edge_at(len(nor_heavy_path) - 1)
        result = restructure_path(nor_heavy_path, lib, indices=[1])
        new_edge = result.path.edge_at(len(result.path) - 1)
        assert new_edge is original_edge

    def test_side_load_migrates_to_output_inverter(self, lib, nor_heavy_path):
        result = restructure_path(nor_heavy_path, lib, indices=[1])
        assert result.path.stages[1].cside_ff == 0.0
        assert result.path.stages[3].cside_ff == pytest.approx(250.0 * lib.cref)

    def test_side_inverter_area_counted(self, lib, nor_heavy_path):
        result = restructure_path(nor_heavy_path, lib, indices=[1, 3])
        inv = lib.inverter
        min_inv_area = inv.total_width_um(inv.cin_min(lib.tech), lib.tech)
        # NOR2 has 1 side input, NOR3 has 2.
        assert result.side_inverter_area_um == pytest.approx(3 * min_inv_area)

    def test_non_nor_rejected(self, lib, nor_heavy_path):
        with pytest.raises(ValueError):
            restructure_path(nor_heavy_path, lib, indices=[2])

    def test_default_selection_targets_critical_nors(self, lib, nor_heavy_path):
        result = restructure_path(nor_heavy_path, lib)
        assert set(result.replaced) <= {1, 3}
        assert result.replaced  # something was selected

    def test_restructured_tmin_beats_original_on_hot_path(self, lib, nor_heavy_path):
        t_orig, _, _, _ = min_delay_bound(nor_heavy_path, lib)
        result = restructure_path(nor_heavy_path, lib)
        t_new, _, _, _ = min_delay_bound(result.path, lib)
        assert t_new < t_orig


class TestConstraintFlow:
    def test_distribution_after_rewrite(self, lib, nor_heavy_path):
        t_orig, _, _, _ = min_delay_bound(nor_heavy_path, lib)
        tc = 0.95 * t_orig  # infeasible for sizing alone
        result, rewritten = distribute_with_restructuring(
            nor_heavy_path, lib, tc
        )
        assert result.feasible
        assert rewritten.side_inverter_area_um > 0


class TestCircuitRewrite:
    @pytest.fixture()
    def nor_circuit(self):
        c = Circuit("norc")
        for net in ("a", "b", "c"):
            c.add_input(net)
        c.add_gate("n1", GateKind.NOR2, ["a", "b"])
        c.add_gate("n2", GateKind.NAND2, ["n1", "c"])
        c.add_gate("y", GateKind.NOR3, ["n1", "n2", "c"])
        c.add_output("y")
        c.validate()
        return c

    def test_nor_to_nand_equivalent(self, nor_circuit):
        rewritten = demorgan_nor_to_nand(nor_circuit, "n1")
        assert equivalent(
            nor_circuit, rewritten, exhaustive_vectors(nor_circuit.inputs)
        )

    def test_output_net_name_survives(self, nor_circuit):
        rewritten = demorgan_nor_to_nand(nor_circuit, "n1")
        assert "n1" in rewritten.gates
        assert rewritten.gates["n1"].kind is GateKind.INV

    def test_gate_count_increases_by_fanin_plus_one(self, nor_circuit):
        rewritten = demorgan_nor_to_nand(nor_circuit, "y")  # NOR3
        assert len(rewritten) == len(nor_circuit) + 4  # 3 inv + nand (y reused)

    def test_wrong_kind_rejected(self, nor_circuit):
        with pytest.raises(ValueError):
            demorgan_nor_to_nand(nor_circuit, "n2")  # a NAND
        with pytest.raises(ValueError):
            demorgan_nand_to_nor(nor_circuit, "n1")  # a NOR

    def test_nand_to_nor_equivalent(self, nor_circuit):
        rewritten = demorgan_nand_to_nor(nor_circuit, "n2")
        assert equivalent(
            nor_circuit, rewritten, exhaustive_vectors(nor_circuit.inputs)
        )

    def test_rewrite_all_nors(self, nor_circuit):
        rewritten, renamed = rewrite_all_nors(nor_circuit)
        assert set(renamed) == {"n1", "y"}
        assert equivalent(
            nor_circuit, rewritten, exhaustive_vectors(nor_circuit.inputs)
        )
        kinds = {g.kind for g in rewritten.gates.values()}
        assert GateKind.NOR2 not in kinds
        assert GateKind.NOR3 not in kinds

    def test_rewrite_on_benchmark(self, lib):
        from repro.iscas.loader import load_benchmark
        import numpy as np

        circuit = load_benchmark("fpd")
        rewritten, renamed = rewrite_all_nors(circuit)
        rng = np.random.default_rng(3)
        vectors = [
            {net: bool(rng.integers(2)) for net in circuit.inputs}
            for _ in range(64)
        ]
        assert equivalent(circuit, rewritten, vectors)
