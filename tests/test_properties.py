"""Property-based tests (hypothesis) on the core invariants.

These are the load-bearing guarantees of the reproduction:

* convexity -- the eq. 4 fixed point is a true lower bound;
* constraint distribution never violates or needlessly overshoots Tc;
* the delay model is monotone in the physically obvious directions;
* netlist round-trips and rewrites preserve logic.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cells.gate_types import GateKind, logic_eval, num_inputs
from repro.cells.library import default_library
from repro.netlist.bench_parser import parse_bench, to_bench
from repro.netlist.circuit import Circuit, equivalent
from repro.restructuring.demorgan import rewrite_all_nors
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import distribute_constraint
from repro.timing.delay_model import Edge, gate_delay
from repro.timing.evaluation import path_delay_ps
from repro.timing.path import make_path

LIB = default_library()

PATH_KINDS = st.lists(
    st.sampled_from(
        [
            GateKind.INV,
            GateKind.NAND2,
            GateKind.NAND3,
            GateKind.NOR2,
            GateKind.NOR3,
            GateKind.AND2,
            GateKind.OR2,
        ]
    ),
    min_size=2,
    max_size=8,
)

LOADS = st.floats(min_value=2.0, max_value=60.0)  # in CREF units


def _build_path(kinds, cterm_mult, side_mults):
    side = [m * LIB.cref for m in side_mults[: len(kinds)]]
    side += [0.0] * (len(kinds) - len(side))
    return make_path(kinds, LIB, cterm_ff=cterm_mult * LIB.cref, cside_ff=side)


class TestDelayModelProperties:
    @given(
        kind=st.sampled_from(list(GateKind)),
        cin=st.floats(min_value=3.0, max_value=200.0),
        cload=st.floats(min_value=1.0, max_value=500.0),
        tin=st.floats(min_value=0.0, max_value=500.0),
        edge=st.sampled_from([Edge.RISE, Edge.FALL]),
    )
    @settings(max_examples=150)
    def test_delay_positive_and_finite(self, kind, cin, cload, tin, edge):
        cell = LIB.cell(kind)
        timing = gate_delay(cell, LIB.tech, cin, cload, tin, edge)
        assert 0.0 < timing.delay_ps < 1e7
        assert 0.0 < timing.tout_ps < 1e7

    @given(
        kind=st.sampled_from(list(GateKind)),
        cin=st.floats(min_value=3.0, max_value=100.0),
        cload=st.floats(min_value=1.0, max_value=300.0),
        extra=st.floats(min_value=1.0, max_value=300.0),
        edge=st.sampled_from([Edge.RISE, Edge.FALL]),
    )
    @settings(max_examples=150)
    def test_delay_monotone_in_load(self, kind, cin, cload, extra, edge):
        cell = LIB.cell(kind)
        light = gate_delay(cell, LIB.tech, cin, cload, 0.0, edge)
        heavy = gate_delay(cell, LIB.tech, cin, cload + extra, 0.0, edge)
        assert heavy.delay_ps > light.delay_ps
        assert heavy.tout_ps > light.tout_ps

    @given(
        kind=st.sampled_from(list(GateKind)),
        cin=st.floats(min_value=3.0, max_value=100.0),
        factor=st.floats(min_value=1.1, max_value=8.0),
        cload=st.floats(min_value=50.0, max_value=400.0),
        edge=st.sampled_from([Edge.RISE, Edge.FALL]),
    )
    @settings(max_examples=150)
    def test_transition_improves_with_drive(self, kind, cin, factor, cload, edge):
        cell = LIB.cell(kind)
        small = gate_delay(cell, LIB.tech, cin, cload, 0.0, edge)
        big = gate_delay(cell, LIB.tech, cin * factor, cload, 0.0, edge)
        assert big.tout_ps < small.tout_ps


class TestBoundsProperties:
    @given(
        kinds=PATH_KINDS,
        cterm=LOADS,
        side=st.lists(st.floats(min_value=0.0, max_value=40.0), max_size=8),
        scales=st.lists(st.floats(min_value=1.0, max_value=60.0), min_size=8,
                        max_size=8),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_tmin_is_lower_bound(self, kinds, cterm, side, scales):
        path = _build_path(kinds, cterm, side)
        tmin, _, _, _ = min_delay_bound(path, LIB)
        mins = path.min_sizes(LIB)
        sizes = mins * np.array(scales[: len(kinds)])
        sizes = path.clamp_sizes(sizes, LIB)
        assert path_delay_ps(path, sizes, LIB) >= tmin - 1e-6

    @given(kinds=PATH_KINDS, cterm=LOADS,
           seed_mult=st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_tmin_seed_invariance(self, kinds, cterm, seed_mult):
        path = _build_path(kinds, cterm, [])
        t_default, _, _, _ = min_delay_bound(path, LIB)
        t_seeded, _, _, _ = min_delay_bound(
            path, LIB, cref_ff=seed_mult * LIB.cref
        )
        assert t_seeded == pytest.approx(t_default, rel=1e-3)


class TestConstraintProperties:
    @given(
        kinds=PATH_KINDS,
        cterm=LOADS,
        ratio=st.floats(min_value=1.05, max_value=4.0),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_distribution_meets_feasible_tc(self, kinds, cterm, ratio):
        path = _build_path(kinds, cterm, [])
        tmin, _, _, _ = min_delay_bound(path, LIB)
        tc = ratio * tmin
        result = distribute_constraint(path, LIB, tc)
        assert result.feasible
        assert result.achieved_delay_ps <= tc * (1.0 + 1e-6)
        assert result.area_um > 0.0

    @given(kinds=PATH_KINDS, cterm=LOADS,
           ratio=st.floats(min_value=0.3, max_value=0.97))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_distribution_flags_infeasible_tc(self, kinds, cterm, ratio):
        path = _build_path(kinds, cterm, [])
        tmin, _, _, _ = min_delay_bound(path, LIB)
        result = distribute_constraint(path, LIB, ratio * tmin)
        assert not result.feasible


def random_circuit(draw):
    """Hypothesis-drawn small random DAG with guaranteed outputs."""
    n_inputs = draw(st.integers(min_value=2, max_value=5))
    n_gates = draw(st.integers(min_value=1, max_value=10))
    circuit = Circuit("rand")
    nets = [circuit.add_input(f"i{k}") for k in range(n_inputs)]
    for g in range(n_gates):
        kind = draw(
            st.sampled_from(
                [
                    GateKind.INV,
                    GateKind.NAND2,
                    GateKind.NOR2,
                    GateKind.AND2,
                    GateKind.OR2,
                    GateKind.XOR2,
                    GateKind.NOR3,
                ]
            )
        )
        fanin = [
            nets[draw(st.integers(min_value=0, max_value=len(nets) - 1))]
            for _ in range(num_inputs(kind))
        ]
        circuit.add_gate(f"g{g}", kind, fanin)
        nets.append(f"g{g}")
    circuit.add_output(f"g{n_gates - 1}")
    circuit.validate()
    return circuit


circuits = st.composite(random_circuit)


class TestNetlistProperties:
    @given(circuit=circuits())
    @settings(max_examples=40, deadline=None)
    def test_bench_roundtrip_equivalence(self, circuit):
        text = to_bench(circuit)
        parsed = parse_bench(text)
        vectors = _sample_vectors(circuit, 24)
        assert equivalent(circuit, parsed, vectors)

    @given(circuit=circuits())
    @settings(max_examples=40, deadline=None)
    def test_demorgan_rewrite_equivalence(self, circuit):
        rewritten, _ = rewrite_all_nors(circuit)
        vectors = _sample_vectors(circuit, 24)
        assert equivalent(circuit, rewritten, vectors)
        assert not any(
            g.kind in (GateKind.NOR2, GateKind.NOR3, GateKind.NOR4)
            for g in rewritten.gates.values()
        )

    @given(circuit=circuits())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_extractor_matches_sta(self, circuit):
        from repro.timing.critical_paths import critical_path
        from repro.timing.sta import analyze

        sta = analyze(circuit, LIB)
        top = critical_path(circuit, LIB)
        # The extractor re-evaluates exactly; STA's slew merging can only
        # make its figure >= any single path's exact delay.
        assert top.delay_ps <= sta.critical_delay_ps * (1.0 + 1e-9)
        assert top.delay_ps >= 0.5 * sta.critical_delay_ps


def _sample_vectors(circuit, count):
    rng = np.random.default_rng(99)
    return [
        {net: bool(rng.integers(2)) for net in circuit.inputs}
        for _ in range(count)
    ]


class TestLogicProperties:
    @given(
        kind=st.sampled_from(list(GateKind)),
        data=st.data(),
    )
    @settings(max_examples=200)
    def test_inverting_flag_consistent_with_logic(self, kind, data):
        """is_inverting matches the truth table around the all-non-controlling
        input point used by the path polarity engine."""
        n = num_inputs(kind)
        if kind in (GateKind.XOR2, GateKind.XNOR2):
            base = [False] * n
        elif kind.value.startswith(("nand", "and")):
            base = [True] * n
        elif kind.value.startswith(("nor", "or")):
            base = [False] * n
        else:
            base = [False] * n
        pin = data.draw(st.integers(min_value=0, max_value=n - 1))
        low = list(base)
        low[pin] = False
        high = list(base)
        high[pin] = True
        out_low = logic_eval(kind, low)
        out_high = logic_eval(kind, high)
        from repro.cells.gate_types import is_inverting

        if out_low != out_high:  # the pin is observable at this point
            assert is_inverting(kind) == (out_high < out_low)
