"""Unit tests for gate kinds and their logic functions."""

import itertools

import pytest

from repro.cells.gate_types import (
    GateKind,
    and_kind,
    is_inverting,
    logic_eval,
    nand_kind,
    nor_kind,
    num_inputs,
    or_kind,
)


class TestArity:
    @pytest.mark.parametrize(
        "kind, n",
        [
            (GateKind.INV, 1),
            (GateKind.BUF, 1),
            (GateKind.NAND2, 2),
            (GateKind.NAND4, 4),
            (GateKind.NOR3, 3),
            (GateKind.XOR2, 2),
        ],
    )
    def test_num_inputs(self, kind, n):
        assert num_inputs(kind) == n

    def test_every_kind_has_arity(self):
        for kind in GateKind:
            assert num_inputs(kind) >= 1

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            logic_eval(GateKind.NAND2, [True])
        with pytest.raises(ValueError):
            logic_eval(GateKind.INV, [True, False])


class TestLogic:
    def test_inv(self):
        assert logic_eval(GateKind.INV, [False]) is True
        assert logic_eval(GateKind.INV, [True]) is False

    def test_buf(self):
        assert logic_eval(GateKind.BUF, [True]) is True
        assert logic_eval(GateKind.BUF, [False]) is False

    @pytest.mark.parametrize("kind", [GateKind.NAND2, GateKind.NAND3, GateKind.NAND4])
    def test_nand_truth_table(self, kind):
        n = num_inputs(kind)
        for bits in itertools.product([False, True], repeat=n):
            assert logic_eval(kind, bits) == (not all(bits))

    @pytest.mark.parametrize("kind", [GateKind.NOR2, GateKind.NOR3, GateKind.NOR4])
    def test_nor_truth_table(self, kind):
        n = num_inputs(kind)
        for bits in itertools.product([False, True], repeat=n):
            assert logic_eval(kind, bits) == (not any(bits))

    @pytest.mark.parametrize("kind", [GateKind.AND3, GateKind.OR4])
    def test_and_or(self, kind):
        n = num_inputs(kind)
        for bits in itertools.product([False, True], repeat=n):
            expected = all(bits) if kind is GateKind.AND3 else any(bits)
            assert logic_eval(kind, bits) == expected

    def test_xor_xnor(self):
        for a, b in itertools.product([False, True], repeat=2):
            assert logic_eval(GateKind.XOR2, [a, b]) == (a != b)
            assert logic_eval(GateKind.XNOR2, [a, b]) == (a == b)

    def test_demorgan_identity(self):
        # NOR(a, b) == INV(NAND(INV(a), INV(b))) -- the section 4.2 rewrite.
        for a, b in itertools.product([False, True], repeat=2):
            direct = logic_eval(GateKind.NOR2, [a, b])
            rewritten = logic_eval(
                GateKind.INV,
                [
                    logic_eval(
                        GateKind.NAND2,
                        [
                            logic_eval(GateKind.INV, [a]),
                            logic_eval(GateKind.INV, [b]),
                        ],
                    )
                ],
            )
            assert direct == rewritten


class TestPolarity:
    def test_inverting_set(self):
        assert is_inverting(GateKind.INV)
        assert is_inverting(GateKind.NAND3)
        assert is_inverting(GateKind.NOR2)
        assert is_inverting(GateKind.XNOR2)
        assert not is_inverting(GateKind.BUF)
        assert not is_inverting(GateKind.AND2)
        assert not is_inverting(GateKind.OR4)
        assert not is_inverting(GateKind.XOR2)


class TestKindFamilies:
    def test_lookups(self):
        assert nand_kind(3) is GateKind.NAND3
        assert nor_kind(2) is GateKind.NOR2
        assert and_kind(4) is GateKind.AND4
        assert or_kind(3) is GateKind.OR3

    @pytest.mark.parametrize("fn", [nand_kind, nor_kind, and_kind, or_kind])
    @pytest.mark.parametrize("width", [1, 5, 0])
    def test_out_of_range(self, fn, width):
        with pytest.raises(ValueError):
            fn(width)
