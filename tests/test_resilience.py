"""Chaos tests for :mod:`repro.resilience` and its integration points.

Every failure here is *injected deterministically* -- a seeded
:class:`FaultPlan` against named sites -- so the suite asserts exact
recovery behaviour instead of sleeping and hoping:

* retry policies produce seeded, reproducible backoff sequences;
* the circuit breaker trips, half-open-probes and recovers on an
  injectable clock (no wall-clock waits);
* a pool worker crash mid-optimize is retried on a fresh pool and the
  final record is byte-identical to the fault-free run;
* a job outliving its deadline raises a structured timeout and frees
  the worker;
* a dropped client event stream reconnects and resumes idempotently;
* corrupt result-store entries are quarantined, counted, and agree
  between ``get`` and ``in``;
* the batch and sweep runners distinguish "no subprocess support"
  (permanent serial fallback) from "worker crashed" (retry first).
"""

import json
import threading
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.api import Job, RunRecord, Session, SweepSpec
from repro.api.job import JobError
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    InlinePool,
    JobTimeoutError,
    RetryPolicy,
    faults,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serve import (
    PopsServer,
    ResultStore,
    ServeClient,
    ServeClientError,
    ServeConfig,
    start_server_thread,
)
from repro.serve.scheduler import JobExecutor


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection inert."""
    faults.uninstall()
    yield
    faults.uninstall()


def _strip_timing(record_dict):
    """A record dict reduced to its deterministic (byte-parity) surface."""
    return RunRecord.from_dict(record_dict).to_dict(with_timing=False)


# -- the policy layer --------------------------------------------------


class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(
            attempts=5, base_s=0.05, multiplier=2.0, max_delay_s=0.3,
            jitter=0.25, seed=7,
        )
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second  # seeded jitter: a pure function
        assert len(first) == 4  # attempts - 1 retries
        assert all(d <= 0.3 * 1.25 for d in first)
        # exponential shape under the cap (jitter only ever adds)
        assert first[0] >= 0.05
        assert first[1] >= 0.1

    def test_different_seeds_differ(self):
        a = list(RetryPolicy(seed=1).delays())
        b = list(RetryPolicy(seed=2).delays())
        assert a != b

    def test_run_retries_then_succeeds(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_s=0.01, jitter=0.0)
        out = policy.run(flaky, retry_on=(OSError,), sleep=slept.append)
        assert out == "ok"
        assert calls["n"] == 3
        assert slept == list(policy.delays())

    def test_run_exhaustion_reraises_last(self):
        def always():
            raise ValueError("still broken")

        with pytest.raises(ValueError, match="still broken"):
            RetryPolicy(attempts=2, base_s=0.0).run(
                always, retry_on=(ValueError,), sleep=lambda _: None
            )

    def test_run_does_not_retry_foreign_exceptions(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            RetryPolicy(attempts=5).run(
                wrong_kind, retry_on=(OSError,), sleep=lambda _: None
            )
        assert calls["n"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_trips_after_k_consecutive_failures(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failures=3, cooldown_s=10.0, clock=lambda: clock["t"]
        )
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1
        assert breaker.short_circuits == 1

    def test_half_open_probe_recovers(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failures=1, cooldown_s=10.0, clock=lambda: clock["t"]
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock["t"] = 10.0  # cooldown elapsed: exactly one probe admitted
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # second caller waits on the probe
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failures=1, cooldown_s=5.0, clock=lambda: clock["t"]
        )
        breaker.record_failure()
        clock["t"] = 5.0
        assert breaker.allow()  # the probe
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()  # a fresh cooldown started at t=5
        clock["t"] = 10.0
        assert breaker.allow()

    def test_success_resets_the_run(self):
        breaker = CircuitBreaker(failures=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_as_dict_shape(self):
        snap = CircuitBreaker(failures=4, cooldown_s=1.5).as_dict()
        assert snap == {
            "state": "closed", "failures": 4, "cooldown_s": 1.5,
            "consecutive_failures": 0, "trips": 0, "probes": 0,
            "recoveries": 0, "short_circuits": 0,
        }


# -- the fault-injection harness ---------------------------------------


class TestFaultPlan:
    def test_fires_inside_the_window_only(self):
        plan = FaultPlan([FaultSpec(faults.SITE_STREAM_DROP, after=2, times=2)])
        fired = [
            plan.fire(faults.SITE_STREAM_DROP) is not None for _ in range(6)
        ]
        assert fired == [False, False, True, True, False, False]
        assert plan.hits() == {faults.SITE_STREAM_DROP: 6}
        assert plan.fired() == {faults.SITE_STREAM_DROP: 2}

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultSpec(faults.SITE_POOL_BROKEN)])
        assert plan.fire(faults.SITE_TORN_WRITE) is None
        assert plan.fire(faults.SITE_POOL_BROKEN) is not None

    def test_save_load_round_trip(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(faults.SITE_EXEC_SLOW, times=2, after=1, delay_s=0.5)],
            seed=9,
        )
        path = plan.save(str(tmp_path / "plan.json"))
        loaded = FaultPlan.load(path)
        assert loaded.to_dict() == plan.to_dict()
        assert loaded.state_dir == str(tmp_path)  # markers live by the plan

    def test_marker_files_bound_the_budget_across_instances(self, tmp_path):
        # Two plan copies sharing a state dir model two worker processes:
        # the O_EXCL markers keep "times=1" one firing *globally*.
        spec = [FaultSpec(faults.SITE_WORKER_CRASH, times=1)]
        a = FaultPlan(spec, state_dir=str(tmp_path))
        b = FaultPlan(spec, state_dir=str(tmp_path))
        assert a.fire(faults.SITE_WORKER_CRASH) is not None
        assert b.fire(faults.SITE_WORKER_CRASH) is None

    def test_installed_scopes_the_active_plan(self):
        assert faults.fire(faults.SITE_POOL_BROKEN) is None  # inert
        with faults.installed(FaultPlan([FaultSpec(faults.SITE_POOL_BROKEN)])):
            assert faults.fire(faults.SITE_POOL_BROKEN) is not None
        assert faults.fire(faults.SITE_POOL_BROKEN) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("nonsense.site")
        with pytest.raises(ValueError):
            FaultSpec(faults.SITE_POOL_BROKEN, times=0)
        with pytest.raises(ValueError):
            FaultSpec(faults.SITE_POOL_BROKEN, after=-1)


class TestInlinePool:
    def test_runs_inline_without_faults(self):
        pool = InlinePool()
        assert pool.submit(lambda x: x + 1, 41).result() == 42
        assert pool.submitted == 1
        assert pool.broken == 0

    def test_injected_break_raises_broken_process_pool(self):
        pool = InlinePool()
        with faults.installed(FaultPlan([FaultSpec(faults.SITE_POOL_BROKEN)])):
            future = pool.submit(lambda: "never")
            with pytest.raises(BrokenProcessPool):
                future.result()
        assert pool.broken == 1
        # budget spent: the next submission succeeds
        assert pool.submit(lambda: "ok").result() == "ok"


# -- store quarantine --------------------------------------------------


class TestStoreQuarantine:
    def test_corrupt_entry_is_quarantined_not_resurrected(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        key = "ab" + "0" * 62
        store.put(key, {"kind": "bounds", "x": 1})
        with open(store.path_for(key), "w", encoding="utf-8") as handle:
            handle.write('{"kind": "bounds", "x":')  # torn mid-value
        assert store.get(key) is None          # miss, not a crash
        assert key not in store                # membership agrees with get
        assert store.quarantined == 1
        import os

        assert os.path.exists(store.path_for(key) + ".corrupt")
        assert not os.path.exists(store.path_for(key))
        stats = store.stats()
        assert stats["quarantined"] == 1
        assert stats["corrupt_files"] == 1
        # the next completion simply rewrites the key
        store.put(key, {"kind": "bounds", "x": 2})
        assert store.get(key) == {"kind": "bounds", "x": 2}

    def test_non_dict_payload_is_quarantined(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        key = "cd" + "0" * 62
        store.put(key, {"ok": True})
        with open(store.path_for(key), "w", encoding="utf-8") as handle:
            handle.write('[1, 2, 3]\n')  # valid JSON, wrong shape
        assert key not in store
        assert store.quarantined == 1

    def test_torn_write_site_produces_a_real_torn_file(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        key = "ef" + "0" * 62
        with faults.installed(FaultPlan([FaultSpec(faults.SITE_TORN_WRITE)])):
            store.put(key, {"kind": "bounds", "payload": list(range(50))})
        # The injected half-write landed at the final path; first contact
        # quarantines it and the store reports a miss.
        assert store.get(key) is None
        assert store.quarantined == 1
        assert store.corrupt_count() == 1


# -- executor deadlines and pool supervision ---------------------------


def _fast_retry(attempts=3):
    return RetryPolicy(attempts=attempts, base_s=0.0, jitter=0.0)


class TestExecutorDeadline:
    def test_deadline_expiry_raises_job_timeout(self):
        metrics = MetricsRegistry()
        executor = JobExecutor(
            Session(), threads=1, heavy_threads=1, metrics=metrics
        )
        plan = FaultPlan([FaultSpec(faults.SITE_EXEC_SLOW, delay_s=1.0)])
        job = Job(benchmark="fpd")
        try:
            with faults.installed(plan):
                with pytest.raises(JobTimeoutError) as excinfo:
                    executor.run("bounds", job.to_dict(), timeout_s=0.05)
            assert excinfo.value.timeout_s == 0.05
            snap = executor.resilience_stats()
            assert snap["counters"]["resilience.timeouts"] == 1
            assert snap["abandoned"] == 1
            # the worker slot is free: the same executor still runs jobs
            record = executor.run("bounds", job.to_dict())
            assert record["kind"] == "bounds"
        finally:
            executor.shutdown(wait=False)

    def test_job_level_timeout_is_honoured(self):
        executor = JobExecutor(Session(), threads=1, heavy_threads=1)
        plan = FaultPlan([FaultSpec(faults.SITE_EXEC_SLOW, delay_s=1.0)])
        job = Job(benchmark="fpd", timeout_s=0.05)
        try:
            with faults.installed(plan):
                with pytest.raises(JobTimeoutError):
                    executor.run("bounds", job.to_dict())
        finally:
            executor.shutdown(wait=False)

    def test_no_deadline_means_no_guard(self):
        executor = JobExecutor(Session(), threads=1, heavy_threads=1)
        try:
            record = executor.run("bounds", Job(benchmark="fpd").to_dict())
            assert record["kind"] == "bounds"
            assert executor.resilience_stats()["abandoned"] == 0
        finally:
            executor.shutdown(wait=False)

    def test_job_timeout_validation_and_serialization(self):
        with pytest.raises(JobError):
            Job(benchmark="fpd", timeout_s=0.0)
        with pytest.raises(JobError):
            Job(benchmark="fpd", timeout_s=True)
        # unset: omitted, preserving the historical byte form / store keys
        assert "timeout_s" not in Job(benchmark="fpd").to_dict()
        data = Job(benchmark="fpd", timeout_s=2.5).to_dict()
        assert data["timeout_s"] == 2.5
        assert Job.from_dict(data).timeout_s == 2.5


class TestPoolSupervision:
    def test_worker_crash_retries_to_byte_identical_record(self):
        session = Session()
        job = Job(benchmark="fpd", tc_ratio=1.4)
        baseline = session.optimize(job).to_dict()

        metrics = MetricsRegistry()
        executor = JobExecutor(
            session, threads=1, heavy_threads=1, procs=1,
            retry=_fast_retry(), metrics=metrics, pool_factory=InlinePool,
        )
        plan = FaultPlan([FaultSpec(faults.SITE_POOL_BROKEN, times=1)])
        try:
            with faults.installed(plan):
                record = executor.run("optimize", job.to_dict())
            assert _strip_timing(record) == _strip_timing(baseline)
            counters = executor.resilience_stats()["counters"]
            assert counters["resilience.pool_broken"] == 1
            assert counters["resilience.retries"] == 1
            assert counters["resilience.pool_recreated"] == 1
            assert "resilience.fallbacks" not in counters
            assert executor.breaker.state == CLOSED
            assert executor.procs == 1  # crash never downgrades procs
        finally:
            executor.shutdown(wait=False)

    def test_breaker_trips_to_in_thread_and_recovers(self):
        session = Session()
        job = Job(benchmark="fpd", tc_ratio=1.4)
        baseline = session.optimize(job).to_dict()

        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failures=2, cooldown_s=30.0, clock=lambda: clock["t"]
        )
        executor = JobExecutor(
            session, threads=1, heavy_threads=1, procs=1,
            retry=_fast_retry(attempts=4), breaker=breaker,
            pool_factory=InlinePool,
        )
        # Every pool submission breaks until the budget (2) is spent.
        plan = FaultPlan([FaultSpec(faults.SITE_POOL_BROKEN, times=2)])
        try:
            with faults.installed(plan):
                record = executor.run("optimize", job.to_dict())
                # two crashes tripped the breaker; the job fell in-thread
                assert _strip_timing(record) == _strip_timing(baseline)
                assert breaker.state == OPEN
                counters = executor.resilience_stats()["counters"]
                assert counters["resilience.breaker_trips"] == 1
                assert counters["resilience.fallbacks"] == 1

                # while open, jobs short-circuit straight to in-thread
                executor.run("optimize", job.to_dict())
                assert breaker.short_circuits >= 1

                # cooldown over: the probe goes to the (now healthy) pool
                clock["t"] = 30.0
                record = executor.run("optimize", job.to_dict())
            assert _strip_timing(record) == _strip_timing(baseline)
            assert breaker.state == CLOSED
            assert breaker.recoveries == 1
        finally:
            executor.shutdown(wait=False)

    def test_transport_error_disables_pool_permanently(self, caplog):
        def no_subprocess_support(max_workers):
            raise OSError("semaphores unavailable")

        session = Session()
        job = Job(benchmark="fpd", tc_ratio=1.4)
        executor = JobExecutor(
            session, threads=1, heavy_threads=1, procs=2,
            retry=_fast_retry(), pool_factory=no_subprocess_support,
        )
        try:
            import logging

            with caplog.at_level(logging.WARNING, logger="repro.serve"):
                record = executor.run("optimize", job.to_dict())
            assert record["kind"].startswith("optimize")
            assert executor.procs == 0  # permanent: never probed again
            counters = executor.resilience_stats()["counters"]
            assert counters["resilience.pool_disabled"] == 1
            assert any(
                "process pool unavailable" in message
                for message in caplog.messages
            )
        finally:
            executor.shutdown(wait=False)


# -- batch / sweep runner supervision ----------------------------------


class TestBatchSupervision:
    def _jobs(self):
        return [
            Job(benchmark="fpd", tc_ratio=1.4, label="a"),
            Job(benchmark="fpd", tc_ratio=1.6, label="b"),
        ]

    def test_broken_pool_retries_once_then_succeeds(self, monkeypatch):
        session = Session()
        calls = {"n": 0}

        def flaky(self, jobs, workers):
            calls["n"] += 1
            if calls["n"] == 1:
                raise BrokenProcessPool("worker died")
            return [self.optimize(job) for job in jobs]

        monkeypatch.setattr(Session, "_optimize_parallel", flaky)
        records = session.optimize_many(self._jobs(), workers=2)
        assert len(records) == 2
        assert calls["n"] == 2
        assert session.stats.pool_broken == 1
        assert session.stats.pool_retries == 1
        assert session.stats.pool_fallbacks == 0

    def test_broken_pool_twice_falls_back_serial(self, monkeypatch):
        session = Session()

        def always_broken(self, jobs, workers):
            raise BrokenProcessPool("worker died again")

        monkeypatch.setattr(Session, "_optimize_parallel", always_broken)
        serial = [r.to_dict() for r in Session().optimize_many(self._jobs())]
        records = session.optimize_many(self._jobs(), workers=2)
        assert [
            _strip_timing(r.to_dict()) for r in records
        ] == [_strip_timing(d) for d in serial]
        assert session.stats.pool_broken == 2
        assert session.stats.pool_retries == 1
        assert session.stats.pool_fallbacks == 1

    def test_transport_error_goes_straight_to_serial(self, monkeypatch):
        session = Session()
        calls = {"n": 0}

        def no_pool(self, jobs, workers):
            calls["n"] += 1
            raise OSError("no semaphores")

        monkeypatch.setattr(Session, "_optimize_parallel", no_pool)
        records = session.optimize_many(self._jobs(), workers=2)
        assert len(records) == 2
        assert calls["n"] == 1  # no retry for transport errors
        assert session.stats.pool_broken == 0
        assert session.stats.pool_fallbacks == 1


class TestSweepSupervision:
    def _spec(self):
        return SweepSpec(
            benchmarks=("fpd",), tc_ratio_points=(1.4, 1.6), scope="path"
        )

    def test_broken_pool_finishes_serially_with_identical_records(
        self, monkeypatch
    ):
        from repro.explore import run_sweep
        from repro.explore import runner as runner_mod

        reference = run_sweep(Session(), self._spec())

        def always_broken(session, chunks, workers, on_chunk):
            raise BrokenProcessPool("worker died")

        monkeypatch.setattr(runner_mod, "_parallel_chunks", always_broken)
        session = Session()
        result = run_sweep(session, self._spec(), workers=2, chunk_size=1)
        assert [
            _strip_timing(r.to_dict()) for r in result.records
        ] == [_strip_timing(r.to_dict()) for r in reference.records]
        assert session.stats.pool_broken == 2  # first try + one retry
        assert session.stats.pool_retries == 1
        assert session.stats.pool_fallbacks == 1

    def test_transport_error_finishes_serially_without_retry(
        self, monkeypatch
    ):
        from repro.explore import run_sweep
        from repro.explore import runner as runner_mod

        calls = {"n": 0}

        def no_pool(session, chunks, workers, on_chunk):
            calls["n"] += 1
            raise ImportError("no multiprocessing here")

        monkeypatch.setattr(runner_mod, "_parallel_chunks", no_pool)
        session = Session()
        result = run_sweep(session, self._spec(), workers=2, chunk_size=1)
        assert len(result.records) == 2
        assert calls["n"] == 1
        assert session.stats.pool_fallbacks == 1


# -- client resilience -------------------------------------------------


class TestClientResilience:
    def test_wait_ready_reports_the_last_underlying_error(self, tmp_path):
        client = ServeClient(
            socket_path=str(tmp_path / "nowhere.sock"),
            retry=RetryPolicy(attempts=2, base_s=0.01, jitter=0.0),
        )
        with pytest.raises(ServeClientError) as excinfo:
            client.wait_ready(timeout_s=0.2)
        message = str(excinfo.value)
        assert "not ready after" in message
        assert "last error" in message
        assert "nowhere.sock" in message  # the underlying connect failure
        assert excinfo.value.__cause__ is not None

    def test_submit_gives_up_with_transient_error(self, tmp_path):
        client = ServeClient(
            socket_path=str(tmp_path / "nowhere.sock"),
            retry=RetryPolicy(attempts=2, base_s=0.01, jitter=0.0),
        )
        with pytest.raises(ServeClientError) as excinfo:
            client.submit("bounds", Job(benchmark="fpd"))
        assert "gave up after 2 attempt(s)" in str(excinfo.value)
        assert excinfo.value.transient
        assert client.reconnects == 1

    def test_stream_drop_resumes_to_byte_identical_record(self, tmp_path):
        config = ServeConfig(
            socket_path=str(tmp_path / "pops.sock"),
            threads=2, heavy_threads=1,
            store_dir=str(tmp_path / "store"),
        )
        server, thread = start_server_thread(config)
        client = ServeClient(
            socket_path=config.socket_path,
            retry=RetryPolicy(attempts=3, base_s=0.01, jitter=0.0),
        )
        try:
            job = Job(benchmark="fpd", tc_ratio=1.4)
            baseline = client.submit("optimize", job)["record"]

            # Drop the stream after the first event of the next request:
            # the client reconnects and resubmits; the store serves the
            # identical record (idempotent resume).
            plan = FaultPlan(
                [FaultSpec(faults.SITE_STREAM_DROP, after=1, times=1)]
            )
            with faults.installed(plan):
                done = client.submit("optimize", job)
            assert plan.fired() == {faults.SITE_STREAM_DROP: 1}
            assert client.reconnects == 1
            assert json.dumps(done["record"], sort_keys=True) == json.dumps(
                baseline, sort_keys=True
            )
            assert done["cached"] is True  # resumed from the result store
        finally:
            server.request_shutdown(drain=True)
            thread.join(timeout=60)

    def test_cancel_withdraws_a_queued_job(self, tmp_path):
        config = ServeConfig(
            socket_path=str(tmp_path / "pops.sock"), threads=1,
            heavy_threads=1,
        )
        server, thread = start_server_thread(config)
        client = ServeClient(socket_path=config.socket_path)
        try:
            server.pause()  # hold workers so the ticket stays queued
            job = Job(benchmark="fpd", tc_ratio=1.4)
            key = ServeClient.spec_key("optimize", job)
            errors = []

            def waiter():
                try:
                    ServeClient(socket_path=config.socket_path).submit(
                        "optimize", job
                    )
                except ServeClientError as exc:
                    errors.append(exc)

            waiting = threading.Thread(target=waiter)
            waiting.start()
            deadline = time.monotonic() + 10
            while server.stats.submitted < 1:
                assert time.monotonic() < deadline, "submit never arrived"
                time.sleep(0.01)

            assert client.cancel(key) is True
            waiting.join(timeout=10)
            assert not waiting.is_alive()
            assert len(errors) == 1
            assert "cancelled" in str(errors[0])
            assert server.stats.cancelled == 1

            # cancelling an unknown key is a refusal, not an error
            assert client.cancel("0" * 64) is False
            server.resume()
            # the worker skips the withdrawn ticket; the daemon stays
            # healthy and runs new work
            record = client.submit("bounds", Job(benchmark="fpd"))["record"]
            assert record["kind"] == "bounds"
        finally:
            server.resume()
            server.request_shutdown(drain=True)
            thread.join(timeout=60)


# -- the end-to-end chaos acceptance scenario --------------------------


class TestChaosEndToEnd:
    def test_seeded_plan_completes_with_identical_records(self, tmp_path):
        """The ISSUE's acceptance run: one pool-worker crash mid-optimize
        plus one dropped client stream, against a supervised daemon --
        every record byte-identical to the fault-free run, all recovery
        visible in ``serve_metrics``."""
        job = Job(benchmark="fpd", tc_ratio=1.4)

        # Fault-free reference run.
        ref_config = ServeConfig(
            socket_path=str(tmp_path / "ref.sock"), threads=2,
            heavy_threads=1, store_dir=str(tmp_path / "ref-store"),
        )
        ref_server, ref_thread = start_server_thread(ref_config)
        try:
            reference = ServeClient(socket_path=ref_config.socket_path).submit(
                "optimize", job
            )["record"]
        finally:
            ref_server.request_shutdown(drain=True)
            ref_thread.join(timeout=60)

        # Chaos run: supervised pool (InlinePool double), seeded plan.
        config = ServeConfig(
            socket_path=str(tmp_path / "chaos.sock"), threads=2,
            heavy_threads=1, procs=1,
            store_dir=str(tmp_path / "chaos-store"),
            retry=RetryPolicy(attempts=3, base_s=0.0, jitter=0.0),
            pool_factory=InlinePool,
        )
        server, thread = start_server_thread(config)
        client = ServeClient(
            socket_path=config.socket_path,
            retry=RetryPolicy(attempts=3, base_s=0.01, jitter=0.0),
        )
        plan = FaultPlan(
            [
                FaultSpec(faults.SITE_POOL_BROKEN, times=1),
                FaultSpec(faults.SITE_STREAM_DROP, after=1, times=1),
            ],
            seed=42,
        )
        try:
            with faults.installed(plan):
                # Crashes one pool worker mid-optimize (supervised retry)
                # *and* drops this client's event stream after one event
                # (reconnect + idempotent resubmit, coalesce/store).
                done = client.submit("optimize", job)
            # Byte-identical on the deterministic record surface (the
            # repo's parity contract; wall-clock metadata may differ
            # between two live runs).
            assert _strip_timing(done["record"]) == _strip_timing(reference)
            assert plan.fired() == {
                faults.SITE_POOL_BROKEN: 1,
                faults.SITE_STREAM_DROP: 1,
            }
            assert client.reconnects == 1

            # Repeat submission: served from the content-addressed store,
            # byte-for-byte the record the chaos run filed.
            repeat = client.submit("optimize", job)
            assert repeat["cached"] is True
            assert json.dumps(repeat["record"], sort_keys=True) == json.dumps(
                done["record"], sort_keys=True
            )

            # All recovery machinery is visible in serve_metrics.
            snap = client.metrics()
            res = snap["resilience"]
            assert res["counters"]["resilience.pool_broken"] == 1
            assert res["counters"]["resilience.retries"] == 1
            assert res["breaker"]["state"] == "closed"
            assert snap["serve"]["submitted"] >= 2
        finally:
            server.request_shutdown(drain=True)
            thread.join(timeout=60)
