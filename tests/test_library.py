"""Unit tests for the standard cell library."""

import pytest

from repro.cells.gate_types import GateKind
from repro.cells.library import Library, UnknownCellError, default_library
from repro.process.technology import CMOS018, CMOS025


class TestDefaultLibrary:
    def test_covers_every_gate_kind(self, lib):
        for kind in GateKind:
            assert kind in lib
            assert lib.cell(kind).kind is kind

    def test_cref_is_min_inverter(self, lib):
        assert lib.cref == pytest.approx(lib.inverter.cin_min(lib.tech))

    def test_len_and_iter(self, lib):
        assert len(lib) == len(list(lib))
        assert len(lib) == len(GateKind)

    def test_unknown_cell_error(self, lib):
        restricted = Library(
            tech=lib.tech, cells={GateKind.INV: lib.inverter}
        )
        with pytest.raises(UnknownCellError):
            restricted.cell(GateKind.NAND2)

    def test_library_requires_inverter(self, lib):
        with pytest.raises(ValueError):
            Library(tech=lib.tech, cells={GateKind.NAND2: lib.cell(GateKind.NAND2)})

    def test_other_technology(self):
        lib18 = default_library(CMOS018)
        assert lib18.tech is CMOS018
        assert lib18.cref < default_library(CMOS025).cref


class TestLogicalWeightStructure:
    """The Table 2 ordering is rooted in these weight relations."""

    def test_nand_family_hl_increases_with_stack(self, lib):
        weights = [lib.cell(k).dw_hl for k in (GateKind.INV, GateKind.NAND2,
                                               GateKind.NAND3, GateKind.NAND4)]
        assert all(b > a for a, b in zip(weights, weights[1:]))

    def test_nor_family_lh_increases_with_stack(self, lib):
        weights = [lib.cell(k).dw_lh for k in (GateKind.INV, GateKind.NOR2,
                                               GateKind.NOR3, GateKind.NOR4)]
        assert all(b > a for a, b in zip(weights, weights[1:]))

    def test_nor_slower_than_nand_overall(self, lib):
        """R amplifies the P-stack penalty: NOR worst-edge S beats NAND's."""
        tech = lib.tech
        for n_kind, r_kind in [
            (GateKind.NAND2, GateKind.NOR2),
            (GateKind.NAND3, GateKind.NOR3),
        ]:
            nand_worst = max(lib.cell(n_kind).s_hl(tech), lib.cell(n_kind).s_lh(tech))
            nor_worst = max(lib.cell(r_kind).s_hl(tech), lib.cell(r_kind).s_lh(tech))
            assert nor_worst > nand_worst

    def test_parasitics_grow_with_fanin(self, lib):
        assert (
            lib.cell(GateKind.NAND2).p_intrinsic
            < lib.cell(GateKind.NAND3).p_intrinsic
            < lib.cell(GateKind.NAND4).p_intrinsic
        )

    def test_composites_carry_area_overhead(self, lib):
        assert lib.cell(GateKind.AND2).area_factor > 1.0
        assert lib.cell(GateKind.BUF).area_factor > 1.0
        assert lib.cell(GateKind.INV).area_factor == 1.0

    def test_k_ratio_override(self):
        lib3 = default_library(k_ratio=3.0)
        assert lib3.inverter.k_ratio == 3.0
        # Larger k widens the P share: higher CREF per w_min.
        assert lib3.cref > default_library(k_ratio=2.0).cref
