"""Unit tests for the alpha-power MOSFET model."""

import math

import pytest

from repro.process.technology import CMOS025
from repro.process.transistor import (
    MosfetParams,
    drain_current,
    effective_resistance,
    nmos_for,
    pmos_for,
    saturation_voltage,
    unit_saturation_current,
)


@pytest.fixture(scope="module")
def nmos():
    return nmos_for(CMOS025)


@pytest.fixture(scope="module")
def pmos():
    return pmos_for(CMOS025)


class TestParamsValidation:
    def test_bad_polarity(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity="x", vt=0.5, beta_ma_per_um=0.1, alpha=1.3)

    def test_bad_vt(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity="n", vt=-0.5, beta_ma_per_um=0.1, alpha=1.3)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity="n", vt=0.5, beta_ma_per_um=0.1, alpha=0.5)


class TestDrainCurrent:
    def test_cutoff_below_threshold(self, nmos):
        assert drain_current(nmos, 1.0, nmos.vt - 0.01, 2.5) == 0.0
        assert drain_current(nmos, 1.0, 0.0, 2.5) == 0.0

    def test_zero_width_zero_current(self, nmos):
        assert drain_current(nmos, 0.0, 2.5, 2.5) == 0.0

    def test_negative_width_rejected(self, nmos):
        with pytest.raises(ValueError):
            drain_current(nmos, -1.0, 2.5, 2.5)

    def test_linear_in_width(self, nmos):
        i1 = drain_current(nmos, 1.0, 2.5, 2.5)
        i3 = drain_current(nmos, 3.0, 2.5, 2.5)
        assert i3 == pytest.approx(3.0 * i1)

    def test_monotone_in_vgs(self, nmos):
        currents = [drain_current(nmos, 1.0, vgs, 2.5) for vgs in (0.8, 1.2, 1.8, 2.5)]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_monotone_in_vds_up_to_saturation(self, nmos):
        vgst = 2.5 - nmos.vt
        vd0 = saturation_voltage(nmos, vgst)
        below = [drain_current(nmos, 1.0, 2.5, v) for v in (0.1 * vd0, 0.5 * vd0, vd0)]
        assert below[0] < below[1] < below[2]

    def test_flat_in_saturation(self, nmos):
        vgst = 2.5 - nmos.vt
        vd0 = saturation_voltage(nmos, vgst)
        i_at_vd0 = drain_current(nmos, 1.0, 2.5, vd0)
        i_deep = drain_current(nmos, 1.0, 2.5, 2.5)
        assert i_deep == pytest.approx(i_at_vd0, rel=1e-12)

    def test_triode_continuity_at_vd0(self, nmos):
        vgst = 2.5 - nmos.vt
        vd0 = saturation_voltage(nmos, vgst)
        just_below = drain_current(nmos, 1.0, 2.5, vd0 * (1 - 1e-9))
        just_above = drain_current(nmos, 1.0, 2.5, vd0 * (1 + 1e-9))
        assert just_below == pytest.approx(just_above, rel=1e-6)


class TestDerivedDevices:
    def test_r_ratio_honoured(self, nmos, pmos):
        i_n = unit_saturation_current(nmos, CMOS025.vdd)
        i_p = unit_saturation_current(pmos, CMOS025.vdd)
        assert i_n / i_p == pytest.approx(CMOS025.r_ratio, rel=1e-6)

    def test_polarities(self, nmos, pmos):
        assert nmos.polarity == "n"
        assert pmos.polarity == "p"

    def test_effective_resistance_scales_inverse_width(self, nmos):
        r1 = effective_resistance(nmos, 1.0, CMOS025.vdd)
        r4 = effective_resistance(nmos, 4.0, CMOS025.vdd)
        assert r1 == pytest.approx(4.0 * r4, rel=1e-9)

    def test_effective_resistance_positive_finite(self, nmos):
        r = effective_resistance(nmos, 2.0, CMOS025.vdd)
        assert 0 < r < math.inf
