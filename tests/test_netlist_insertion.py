"""Tests for netlist-level (polarity-preserving) buffer insertion."""

import pytest

from repro.buffering.netlist_insertion import insert_buffer_pair
from repro.cells.gate_types import GateKind
from repro.netlist.builders import ripple_carry_adder
from repro.netlist.circuit import Circuit, exhaustive_vectors


@pytest.fixture()
def fanout_circuit():
    c = Circuit("f")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", GateKind.NAND2, ["a", "b"])
    c.add_gate("x", GateKind.INV, ["g"])
    c.add_gate("y", GateKind.NOR2, ["g", "a"])
    c.add_output("x")
    c.add_output("y")
    c.add_output("g")
    c.validate()
    return c


class TestInsertBufferPair:
    def test_logic_preserved(self, fanout_circuit, lib):
        before = fanout_circuit.copy()
        insert_buffer_pair(fanout_circuit, "g", lib)
        # 'g' is still an output net name; readers moved behind the pair.
        vectors = list(exhaustive_vectors(before.inputs))
        for vector in vectors:
            old = before.output_values(vector)
            new = fanout_circuit.output_values(vector)
            assert old["x"] == new["x"]
            assert old["y"] == new["y"]

    def test_fanout_rewired(self, fanout_circuit, lib):
        insert_buffer_pair(fanout_circuit, "g", lib)
        assert fanout_circuit.gates["x"].fanin == ("g_bufb",)
        assert fanout_circuit.gates["y"].fanin == ("g_bufb", "a")
        assert fanout_circuit.gates["g_bufa"].fanin == ("g",)

    def test_primary_output_moved(self, fanout_circuit, lib):
        insert_buffer_pair(fanout_circuit, "g", lib)
        assert "g" not in fanout_circuit.outputs
        assert "g_bufb" in fanout_circuit.outputs

    def test_sizes_applied(self, fanout_circuit, lib):
        insert_buffer_pair(fanout_circuit, "g", lib, cin_ff=12.0)
        assert fanout_circuit.gates["g_bufa"].cin_ff == 12.0
        assert fanout_circuit.gates["g_bufb"].cin_ff == 12.0

    def test_double_insertion_rejected(self, fanout_circuit, lib):
        insert_buffer_pair(fanout_circuit, "g", lib)
        with pytest.raises(ValueError):
            insert_buffer_pair(fanout_circuit, "g", lib)

    def test_unknown_gate(self, fanout_circuit, lib):
        from repro.netlist.circuit import NetlistError

        with pytest.raises(NetlistError):
            insert_buffer_pair(fanout_circuit, "nope", lib)

    def test_on_adder(self, lib):
        """Pair insertion deep in a real circuit keeps it a correct adder."""
        from repro.netlist.builders import adder_inputs, adder_value

        adder = ripple_carry_adder(4)
        insert_buffer_pair(adder, "fa1_cout", lib)
        out = adder.output_values(adder_inputs(9, 7, 4))
        # fa3_cout is still the top carry; fa1_cout readers were rewired.
        assert adder_value(out, 4) == 16
