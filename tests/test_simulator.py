"""Tests for the transistor-level transient simulator."""

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.spice.simulator import SimOptions, simulate_gate, simulate_path
from repro.timing.delay_model import Edge
from repro.timing.path import make_path

FAST = SimOptions(n_steps=1200)


class TestSingleGate:
    def test_inverter_swings_rail_to_rail(self, lib):
        result = simulate_gate(GateKind.INV, lib, 10.0, 30.0, options=FAST)
        wave = result.node_volts[0]
        assert wave[0] == pytest.approx(lib.tech.vdd, abs=0.05)
        assert wave[-1] == pytest.approx(0.0, abs=0.05)

    def test_delay_increases_with_load(self, lib):
        delays = [
            simulate_gate(GateKind.INV, lib, 10.0, load, options=FAST).path_delay_ps
            for load in (20.0, 60.0, 120.0)
        ]
        assert delays[0] < delays[1] < delays[2]

    def test_delay_decreases_with_drive(self, lib):
        delays = [
            simulate_gate(GateKind.INV, lib, cin, 80.0, options=FAST).path_delay_ps
            for cin in (6.0, 12.0, 24.0)
        ]
        assert delays[0] > delays[1] > delays[2]

    def test_falling_input_direction(self, lib):
        result = simulate_gate(
            GateKind.INV, lib, 10.0, 30.0, input_edge=Edge.FALL, options=FAST
        )
        wave = result.node_volts[0]
        assert wave[0] == pytest.approx(0.0, abs=0.05)
        assert wave[-1] == pytest.approx(lib.tech.vdd, abs=0.05)

    def test_nor_slower_than_nand_at_same_size(self, lib):
        """The device-level root of Table 2: NOR's stacked P network."""
        t_nand = simulate_gate(GateKind.NAND2, lib, 12.0, 60.0,
                               input_edge=Edge.FALL, options=FAST).path_delay_ps
        t_nor = simulate_gate(GateKind.NOR2, lib, 12.0, 60.0,
                              input_edge=Edge.FALL, options=FAST).path_delay_ps
        assert t_nor > t_nand


class TestChains:
    def test_stage_delays_sum_close_to_path_delay(self, lib):
        path = make_path([GateKind.INV] * 4, lib, cterm_ff=25.0 * lib.cref)
        sizes = path.min_sizes(lib) * np.array([1.0, 2.0, 3.0, 5.0])
        sizes[0] = path.cin_first_ff
        result = simulate_path(path, sizes, lib, options=FAST)
        assert sum(result.stage_delays_ps) == pytest.approx(
            result.path_delay_ps, rel=0.05
        )

    def test_composites_expand(self, lib):
        path = make_path([GateKind.AND2, GateKind.INV], lib)
        sizes = path.min_sizes(lib)
        result = simulate_path(path, sizes, lib, options=FAST)
        # AND2 expands to NAND2 + INV: 3 primitive nodes for 2 stages.
        assert result.node_volts.shape[0] == 3
        assert result.stage_map == (1, 2)

    def test_buf_expansion_polarity(self, lib):
        path = make_path([GateKind.BUF], lib)
        result = simulate_path(path, path.min_sizes(lib), lib, options=FAST)
        # Rising input, non-inverting output: final node ends high.
        assert result.node_volts[-1][-1] == pytest.approx(lib.tech.vdd, abs=0.1)

    def test_shape_validated(self, lib):
        path = make_path([GateKind.INV, GateKind.INV], lib)
        with pytest.raises(ValueError):
            simulate_path(path, [1.0], lib, options=FAST)


class TestModelAgreement:
    """The Fig. 2-style validation: eq. 1-3 vs the transistor simulator."""

    @pytest.mark.parametrize(
        "kinds",
        [
            [GateKind.INV] * 5,
            [GateKind.NAND2, GateKind.INV, GateKind.NOR2, GateKind.INV],
            [GateKind.INV, GateKind.NAND3, GateKind.INV, GateKind.NOR3, GateKind.INV],
        ],
    )
    def test_path_delay_within_band(self, lib, kinds):
        from repro.timing.evaluation import path_delay_ps

        path = make_path(kinds, lib, cterm_ff=20.0 * lib.cref)
        sizes = path.min_sizes(lib) * 2.0
        sizes[0] = path.cin_first_ff
        model = path_delay_ps(path, sizes, lib)
        sim = simulate_path(path, sizes, lib, options=SimOptions(n_steps=2500))
        assert sim.path_delay_ps == pytest.approx(model, rel=0.25)

    def test_optimally_sized_chain_agreement(self, lib):
        """Near the Tmin sizing (the regime the optimizers live in), the
        model tracks the simulator tightly."""
        from repro.sizing.bounds import min_delay_bound

        path = make_path([GateKind.INV] * 6, lib, cterm_ff=60.0 * lib.cref)
        tmin, sizes, _, _ = min_delay_bound(path, lib)
        sim = simulate_path(path, sizes, lib, options=SimOptions(n_steps=2500))
        assert sim.path_delay_ps == pytest.approx(tmin, rel=0.20)
