"""Tests for the tau / R extraction flow."""

import pytest

from repro.process.calibration import calibrate_tau_and_r
from repro.process.technology import CMOS018, CMOS025


class TestCalibration:
    def test_r_extraction_exact(self):
        result = calibrate_tau_and_r(CMOS025)
        # R is pinned exactly by construction of the PMOS transconductance.
        assert result.r_ratio == pytest.approx(CMOS025.r_ratio, rel=1e-6)
        assert result.r_error < 1e-6

    def test_tau_extraction_same_scale(self):
        # The 20-80% integral sees triode-region slowdown the shape factor
        # only partially compensates; same scale (within ~35%) is the
        # contract, matching the paper's "calibrated from SPICE" wording.
        result = calibrate_tau_and_r(CMOS025)
        assert result.tau_error < 0.35
        assert result.tau_ps > 0

    def test_other_node(self):
        result = calibrate_tau_and_r(CMOS018)
        assert result.r_ratio == pytest.approx(CMOS018.r_ratio, rel=1e-6)
        assert result.tau_error < 0.35

    def test_fanout_insensitivity(self):
        # tau is a process constant: extraction should not depend much on
        # the fanout used for the measurement.
        at_2 = calibrate_tau_and_r(CMOS025, fanout=2.0).tau_ps
        at_8 = calibrate_tau_and_r(CMOS025, fanout=8.0).tau_ps
        assert at_2 == pytest.approx(at_8, rel=0.15)

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            calibrate_tau_and_r(CMOS025, fanout=0.0)
