"""RunRecord envelopes: lossless JSON round-trips for every payload kind."""

import json
import math

import pytest

from repro.api import Job, RecordError, RunRecord, Session
from repro.api.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    flimit_table_from_list,
    flimit_table_to_list,
)
from repro.cells.gate_types import GateKind
from repro.cells.library import default_library
from repro.iscas.loader import load_benchmark


@pytest.fixture(scope="module")
def session():
    return Session()


def _json_round_trip(record: RunRecord, session: Session) -> RunRecord:
    text = record.to_json()
    return RunRecord.from_json(text, library=session.library)


class TestRoundTrips:
    def test_path_optimize_record(self, session):
        record = session.optimize(Job(benchmark="fpd", tc_ratio=1.4))
        clone = _json_round_trip(record, session)
        assert clone.to_dict() == record.to_dict()
        # The typed payload survives too, not just the dict form.
        assert clone.payload.method == record.payload.method
        assert clone.payload.domain == record.payload.domain
        assert clone.payload.slack_ps == pytest.approx(record.payload.slack_ps)
        assert clone.job == record.job

    def test_circuit_optimize_record(self, session):
        record = session.optimize(
            Job(benchmark="fpd", tc_ratio=1.6, scope="circuit",
                k_paths=2, max_passes=2)
        )
        clone = _json_round_trip(record, session)
        assert clone.to_dict() == record.to_dict()
        assert clone.payload.critical_delay_ps == record.payload.critical_delay_ps
        assert clone.payload.circuit.stats() == record.payload.circuit.stats()

    def test_bounds_record(self, session):
        record = session.bounds(Job(benchmark="fpd"))
        clone = _json_round_trip(record, session)
        assert clone.to_dict() == record.to_dict()
        assert clone.payload["bounds"].tmin_ps == record.payload["bounds"].tmin_ps
        assert clone.payload["gate_names"] == record.payload["gate_names"]

    def test_power_record(self, session):
        record = session.power(Job(benchmark="fpd", activity_vectors=16))
        clone = _json_round_trip(record, session)
        assert clone.to_dict() == record.to_dict()
        assert clone.payload.total_uw == pytest.approx(record.payload.total_uw)

    def test_mc_record(self, session):
        import numpy as np

        record = session.mc(
            Job(benchmark="fpd", tc_ps=1700.0, mc_samples=50, mc_seed=3)
        )
        clone = _json_round_trip(record, session)
        assert clone.to_dict() == record.to_dict()
        assert np.array_equal(
            clone.payload.samples_ps, record.payload.samples_ps
        )
        assert clone.payload.endpoints == record.payload.endpoints
        assert clone.payload.spec == record.payload.spec
        assert clone.job.mc_samples == 50
        assert clone.job.mc_seed == 3

    def test_characterize_record(self, session):
        record = session.characterize()
        clone = _json_round_trip(record, session)
        assert clone.to_dict() == record.to_dict()
        assert [e.gate for e in clone.payload] == [e.gate for e in record.payload]

    def test_timing_metadata_is_optional(self, session):
        record = session.bounds(Job(benchmark="fpd"))
        assert "timing" in record.to_dict()
        slim = record.to_dict(with_timing=False)
        assert "timing" not in slim
        # A record rebuilt without timing still round-trips its payload.
        clone = RunRecord.from_dict(
            json.loads(json.dumps(slim)), library=session.library
        )
        assert clone.to_dict(with_timing=False) == slim


class TestHelpers:
    def test_unknown_kind_rejected(self):
        with pytest.raises(RecordError):
            RunRecord(kind="teleport", job=None, payload=None)
        with pytest.raises(RecordError):
            RunRecord.from_dict({"kind": "teleport", "payload": None})

    def test_circuit_dict_round_trip_preserves_sizing(self):
        circuit = load_benchmark("fpd")
        circuit.gates[next(iter(circuit.gates))].cin_ff = 12.25
        clone = circuit_from_dict(circuit_to_dict(circuit))
        assert clone.stats() == circuit.stats()
        assert [g.cin_ff for g in clone.gates.values()] == [
            g.cin_ff for g in circuit.gates.values()
        ]

    def test_flimit_table_round_trip_with_inf(self):
        table = {
            (GateKind.INV, GateKind.NAND2): 37.5,
            (GateKind.INV, GateKind.INV): math.inf,
        }
        rows = flimit_table_to_list(table)
        assert json.loads(json.dumps(rows)) == rows  # strict-JSON safe
        assert flimit_table_from_list(rows) == table

    def test_default_library_rebind(self, session):
        # Records are portable: a *fresh* default library re-binds cells.
        record = session.optimize(Job(benchmark="fpd", tc_ratio=2.0))
        clone = RunRecord.from_json(record.to_json())  # library omitted
        assert clone.to_dict() == record.to_dict()
        assert clone.payload.path.cells == tuple(
            default_library().cell(k) for k in record.payload.path.kinds
        )
