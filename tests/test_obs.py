"""Tests for :mod:`repro.obs` -- tracing, metrics and run telemetry.

The acceptance surface of the observability layer:

* hierarchical spans with parentage, attributes and JSONL round-trip;
* a disabled NullTracer default that records nothing and costs one
  attribute check on hot paths;
* one MetricsRegistry schema unifying the pre-existing ad-hoc stat
  surfaces (caches, incremental STA, batch-probe dispatch, serve);
* optimizer telemetry riding the RunRecord envelope without touching
  any byte-stability contract (traced == untraced payloads);
* the ``pops trace`` renderers.
"""

import json

import pytest

from repro.api import Job, RunRecord, Session
from repro.obs import (
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullTracer,
    OptimizerTelemetry,
    PassTelemetry,
    Stopwatch,
    Tracer,
    hit_rate,
    load_trace_jsonl,
    render_record_telemetry,
    render_spans,
    serve_metrics,
    session_metrics,
)


class TestTracer:
    def test_spans_nest_and_carry_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", circuit="fpd") as outer:
            with tracer.span("inner") as inner:
                inner.set(gates=3)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.attrs == {"gates": 3}
        assert outer.attrs == {"circuit": "fpd"}
        assert inner.duration_s >= 0.0
        assert outer.end_s >= inner.end_s

    def test_event_is_instantaneous_and_parented(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            mark = tracer.event("tick", n=1)
        assert mark.parent_id == span.span_id
        assert mark.duration_s == 0.0
        assert mark.attrs == {"n": 1}

    def test_traced_decorator(self):
        tracer = Tracer()

        @tracer.traced("compute", kind="unit")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        names = [s.name for s in tracer.spans]
        assert names == ["compute"]
        assert tracer.spans[0].attrs == {"kind": "unit"}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", x=1.5):
            tracer.event("b")
        path = str(tmp_path / "trace.jsonl")
        count = tracer.export_jsonl(path)
        assert count == 2
        spans = load_trace_jsonl(path)
        assert [s["name"] for s in spans] == ["a", "b"]
        assert spans[1]["parent"] == spans[0]["id"]
        assert spans[0]["attrs"] == {"x": 1.5}
        # The header line is real JSON carrying the epoch.
        with open(path, encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["trace"]["spans"] == 2

    def test_load_rejects_garbage_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "id": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace_jsonl(str(path))

    def test_null_tracer_records_nothing(self, tmp_path):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("a") as span:
            span.set(ignored=1)
        tracer.event("b")
        assert tracer.to_dicts() == []
        assert tracer.export_jsonl(str(tmp_path / "x.jsonl")) == 0
        assert NULL_TRACER.enabled is False

    def test_stopwatch(self):
        sw = Stopwatch()
        first = sw.elapsed_s
        assert first >= 0.0
        assert sw.elapsed_s >= first
        sw.restart()
        assert sw.elapsed_s < 10.0


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("jobs", 2)
        registry.inc("jobs")
        registry.set_gauge("depth", 4.0)
        for value in (1.0, 2.0, 3.0):
            registry.observe("wait_s", value)
        snap = registry.snapshot()
        assert snap["counters"] == {"jobs": 3}
        assert snap["gauges"] == {"depth": 4.0}
        wait = snap["histograms"]["wait_s"]
        assert wait["count"] == 3
        assert wait["total"] == 6.0
        assert wait["min"] == 1.0 and wait["max"] == 3.0
        assert wait["mean"] == 2.0
        assert wait["p50"] == 2.0

    def test_name_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_empty_histogram_summary(self):
        h = Histogram()
        summary = h.summary()
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["p99"] is None

    def test_hit_rate(self):
        assert hit_rate(0, 0) is None
        assert hit_rate(3, 1) == 0.75


class TestDispatchStats:
    def test_should_batch_records_decisions(self):
        from repro.timing.batch_probe import (
            BATCH_PROBE_MIN_COLUMNS,
            DISPATCH_STATS,
            should_batch,
        )

        DISPATCH_STATS.reset()
        assert should_batch(BATCH_PROBE_MIN_COLUMNS) is True
        assert should_batch(1) is False
        stats = DISPATCH_STATS.as_dict()
        assert stats["batched"] == 1
        assert stats["scalar"] == 1
        assert stats["threshold"] == BATCH_PROBE_MIN_COLUMNS
        assert stats["batch_ratio"] == 0.5
        DISPATCH_STATS.reset()


class TestTelemetry:
    def _sample(self):
        telemetry = OptimizerTelemetry(tc_ps=900.0, initial_delay_ps=1200.0)
        telemetry.passes.append(
            PassTelemetry(
                index=0,
                critical_delay_ps=1000.0,
                paths_extracted=4,
                proposed=4,
                applied_sizing=3,
                applied_structural=1,
                skipped=0,
                elapsed_s=0.25,
            )
        )
        telemetry.passes.append(
            PassTelemetry(
                index=1,
                critical_delay_ps=950.0,
                paths_extracted=4,
                proposed=4,
                applied_sizing=2,
                skipped=2,
                elapsed_s=0.20,
            )
        )
        telemetry.final_delay_ps = 950.0
        telemetry.rollback = "sizing"
        telemetry.rolled_back_passes = 1
        return telemetry

    def test_derived_fields(self):
        telemetry = self._sample()
        assert telemetry.delay_trajectory_ps == [1000.0, 950.0]
        assert telemetry.accepted == 6
        assert telemetry.rejected == 2

    def test_round_trip(self):
        telemetry = self._sample()
        data = telemetry.as_dict()
        back = OptimizerTelemetry.from_dict(data)
        assert back.as_dict() == data
        # Derived fields are serialized for consumers but recomputed.
        assert data["delay_trajectory_ps"] == [1000.0, 950.0]
        assert back.accepted == telemetry.accepted


@pytest.fixture(scope="module")
def traced_run():
    """One traced circuit-scope optimize run shared by the tests below."""
    tracer = Tracer()
    session = Session(tracer=tracer)
    job = Job(benchmark="fpd", tc_ratio=1.4, scope="circuit")
    record = session.optimize(job)
    return session, tracer, job, record


class TestSessionIntegration:
    def test_span_taxonomy(self, traced_run):
        _, tracer, _, _ = traced_run
        names = {s.name for s in tracer.spans}
        assert "session.optimize" in names
        assert "optimize.pass" in names
        assert "optimize.path" in names

    def test_telemetry_on_record(self, traced_run):
        _, _, _, record = traced_run
        telemetry = record.telemetry
        assert telemetry is not None
        assert telemetry["passes"], "expected per-pass telemetry"
        assert len(telemetry["delay_trajectory_ps"]) == len(telemetry["passes"])
        assert telemetry["accepted"] >= 1
        assert telemetry["rollback"] in ("none", "sizing", "structural")

    def test_telemetry_rides_timing_block_only(self, traced_run):
        _, _, _, record = traced_run
        assert "telemetry" in record.to_dict(with_timing=True)
        assert "telemetry" not in record.to_dict(with_timing=False)

    def test_traced_equals_untraced_payload(self, traced_run):
        _, _, job, record = traced_run
        plain = Session().optimize(job)
        assert plain.to_json(with_timing=False) == record.to_json(
            with_timing=False
        )

    def test_record_round_trip_and_old_schema(self, traced_run):
        session, _, _, record = traced_run
        data = record.to_dict(with_timing=True)
        back = RunRecord.from_dict(data, library=session.library)
        assert back.telemetry == record.telemetry
        # An old reader's record (no telemetry key) still parses.
        legacy = dict(data)
        del legacy["telemetry"]
        old = RunRecord.from_dict(legacy, library=session.library)
        assert old.telemetry is None

    def test_cache_stats_hit_rates_and_evictions(self, traced_run):
        session, _, job, _ = traced_run
        session.optimize(job)  # warm repeat: guaranteed hits
        stats = session.cache_stats()
        assert set(stats["hit_rates"]) == set(stats["caches"])
        rate = stats["hit_rates"]["benchmarks"]
        assert rate is not None and 0.0 < rate <= 1.0
        for name, cache in stats["caches"].items():
            assert cache["hit_rate"] == stats["hit_rates"][name]
        assert stats["evictions"] == sum(
            c["evictions"] for c in stats["caches"].values()
        )

    def test_session_metrics_schema(self, traced_run):
        session, _, _, _ = traced_run
        snap = session_metrics(session)
        assert snap["schema"] == 1
        assert snap["sta"]["engines"] >= 1
        assert snap["sta"]["full_builds"] >= 1
        assert snap["probe"]["threshold"] >= 1
        assert "benchmarks" in snap["session"]["caches"]
        json.dumps(snap)  # JSON-native end to end


class TestRenderers:
    def test_render_spans(self, traced_run):
        _, tracer, _, _ = traced_run
        text = render_spans(tracer.to_dicts())
        assert "session.optimize" in text
        assert "cumulative by name" in text
        assert "ms" in text

    def test_render_spans_elides(self):
        tracer = Tracer()
        for i in range(10):
            with tracer.span("s", i=i):
                pass
        text = render_spans(tracer.to_dicts(), max_rows=3)
        assert "7 more spans elided" in text

    def test_render_empty_trace(self):
        assert "empty trace" in render_spans([])

    def test_render_record_telemetry(self, traced_run):
        _, _, _, record = traced_run
        text = render_record_telemetry(record.to_dict(with_timing=True))
        assert "delay    :" in text
        assert "pass   delay_ps" in text

    def test_render_record_without_telemetry(self, traced_run):
        _, _, _, record = traced_run
        data = record.to_dict(with_timing=False)
        assert "telemetry: none recorded" in render_record_telemetry(data)


class TestServeMetrics:
    def test_metrics_op_and_snapshot(self, tmp_path):
        from repro.serve import ServeClient, ServeConfig, start_server_thread

        config = ServeConfig(
            socket_path=str(tmp_path / "pops.sock"),
            threads=2,
            heavy_threads=1,
            store_dir=str(tmp_path / "store"),
            cache_limit=64,
        )
        server, thread = start_server_thread(config)
        client = ServeClient(socket_path=config.socket_path)
        try:
            client.submit_record("bounds", Job(benchmark="fpd"))
            snap = client.metrics()
            assert snap["serve"]["executed"] == 1
            assert snap["serve"]["queue_depth"] == 0
            assert snap["serve"]["inflight"] == 0
            assert snap["serve"]["pools"]["threads"] == 2
            assert snap["store"]["writes"] == 1
            exec_hist = snap["timings"]["serve.exec_s"]
            assert exec_hist["count"] == 1
            wire = serve_metrics(server)
            assert wire["serve"]["executed"] == 1
        finally:
            server.request_shutdown(drain=True)
            thread.join(timeout=60)
        assert not thread.is_alive()

    def test_serve_logging_emits_job_lifecycle(self, tmp_path, caplog):
        import logging

        from repro.serve import ServeClient, ServeConfig, start_server_thread

        config = ServeConfig(
            socket_path=str(tmp_path / "pops.sock"),
            threads=2,
            heavy_threads=1,
            cache_limit=64,
        )
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            server, thread = start_server_thread(config)
            client = ServeClient(socket_path=config.socket_path)
            try:
                client.submit_record("bounds", Job(benchmark="fpd"))
            finally:
                server.request_shutdown(drain=True)
                thread.join(timeout=60)
        text = caplog.text
        assert "serving on" in text
        assert "accepted" in text
        assert "done in" in text
        assert "shutdown complete" in text
