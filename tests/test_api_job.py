"""Job specification: validation, derived helpers, serialization."""

import pytest

from repro.api import Job, JobError
from repro.cells.gate_types import GateKind
from repro.netlist.circuit import Circuit


def _toy_circuit() -> Circuit:
    circuit = Circuit("toy")
    a = circuit.add_input("a")
    b = circuit.add_input("b")
    circuit.add_gate("n1", GateKind.NAND2, [a, b])
    circuit.add_gate("o1", GateKind.INV, ["n1"], cin_ff=6.5)
    circuit.add_output("o1")
    return circuit


class TestValidation:
    def test_minimal_benchmark_job(self):
        job = Job(benchmark="c432")
        assert job.name == "c432"
        assert not job.has_constraint

    def test_requires_a_target(self):
        with pytest.raises(JobError, match="exactly one"):
            Job()

    def test_rejects_both_targets(self):
        with pytest.raises(JobError, match="exactly one"):
            Job(benchmark="c432", circuit=_toy_circuit())

    def test_rejects_both_constraints(self):
        with pytest.raises(JobError, match="at most one"):
            Job(benchmark="c432", tc_ps=500.0, tc_ratio=1.5)

    @pytest.mark.parametrize("kwargs", [
        {"tc_ps": 0.0},
        {"tc_ps": -5.0},
        {"tc_ratio": -1.0},
        {"scope": "galaxy"},
        {"k_paths": 0},
        {"max_passes": 0},
        {"weight_mode": "heavy"},
        {"frequency_mhz": 0.0},
        {"activity_vectors": 1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(JobError):
            Job(benchmark="c432", **kwargs)

    def test_bench_dir_only_for_benchmarks(self):
        with pytest.raises(JobError, match="bench_dir"):
            Job(circuit=_toy_circuit(), bench_dir="/tmp")

    def test_benchmark_must_be_string(self):
        with pytest.raises(JobError, match="string"):
            Job(benchmark=42)


class TestHelpers:
    def test_label_wins_name(self):
        assert Job(benchmark="c432", label="sweep-3").name == "sweep-3"

    def test_circuit_job_name(self):
        assert Job(circuit=_toy_circuit()).name == "toy"

    def test_with_constraint_swaps_cleanly(self):
        job = Job(benchmark="c432", tc_ps=900.0)
        swept = job.with_constraint(tc_ratio=1.4)
        assert swept.tc_ps is None and swept.tc_ratio == 1.4
        assert job.tc_ps == 900.0  # original untouched

    def test_with_constraint_requires_exactly_one(self):
        with pytest.raises(JobError):
            Job(benchmark="c432").with_constraint()

    def test_jobs_are_hashable(self):
        assert len({Job(benchmark="c432"), Job(benchmark="c432")}) == 1


class TestSerialization:
    def test_round_trip_benchmark_job(self):
        job = Job(benchmark="c880", tc_ratio=1.25, scope="circuit",
                  k_paths=6, weight_mode="area", label="campaign")
        assert Job.from_dict(job.to_dict()) == job

    def test_round_trip_inline_circuit(self):
        job = Job(circuit=_toy_circuit(), tc_ps=450.0)
        clone = Job.from_dict(job.to_dict())
        assert clone.circuit.stats() == job.circuit.stats()
        assert clone.circuit.gates["o1"].cin_ff == 6.5
        assert clone.to_dict() == job.to_dict()

    def test_rejects_unknown_fields(self):
        data = Job(benchmark="c432").to_dict()
        data["turbo"] = True
        with pytest.raises(JobError, match="unknown"):
            Job.from_dict(data)
