"""Tests for the structural circuit builders."""

import pytest

from repro.cells.gate_types import GateKind
from repro.netlist.builders import (
    adder_inputs,
    adder_value,
    and_or_tree,
    gate_chain,
    inverter_chain,
    parity_tree,
    ripple_carry_adder,
)


class TestInverterChain:
    def test_length_and_logic(self):
        c = inverter_chain(5)
        assert len(c) == 5
        assert c.depth() == 5
        assert c.output_values({"in": True})["n4"] is False  # odd inversions
        assert c.output_values({"in": False})["n4"] is True

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            inverter_chain(0)


class TestGateChain:
    def test_side_inputs_created(self):
        c = gate_chain([GateKind.NAND2, GateKind.NOR3, GateKind.INV])
        # nand2 needs 1 side input, nor3 needs 2.
        assert set(c.inputs) == {"in", "s0_1", "s1_1", "s1_2"}
        assert c.depth() == 3

    def test_sensitisable(self):
        """With non-controlling side values, the path input propagates."""
        c = gate_chain([GateKind.NAND2, GateKind.NOR2])
        # NAND side at 1 (non-controlling), NOR side at 0 (non-controlling).
        base = {"s0_1": True, "s1_1": False}
        y0 = c.output_values(dict(base, **{"in": False}))["n1"]
        y1 = c.output_values(dict(base, **{"in": True}))["n1"]
        assert y0 != y1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gate_chain([])


class TestRippleCarryAdder:
    @pytest.mark.parametrize("a, b, cin", [(0, 0, False), (65535, 1, False),
                                           (12345, 54321, True), (40000, 39999, False)])
    def test_adds_correctly(self, a, b, cin):
        adder = ripple_carry_adder(16)
        out = adder.output_values(adder_inputs(a, b, 16, cin))
        assert adder_value(out, 16) == a + b + int(cin)

    def test_small_adder(self):
        adder = ripple_carry_adder(4)
        for a in range(16):
            for b in (0, 5, 15):
                out = adder.output_values(adder_inputs(a, b, 4))
                assert adder_value(out, 4) == a + b

    def test_operand_range_checked(self):
        with pytest.raises(ValueError):
            adder_inputs(16, 0, 4)
        with pytest.raises(ValueError):
            adder_inputs(-1, 0, 4)

    def test_all_nand(self):
        adder = ripple_carry_adder(2)
        assert all(g.kind is GateKind.NAND2 for g in adder.gates.values())

    def test_structure_scale(self):
        adder = ripple_carry_adder(16)
        assert len(adder) == 16 * 9
        assert len(adder.outputs) == 17


class TestTrees:
    def test_parity(self):
        c = parity_tree(8)
        vec = {f"x{k}": bool((0b10110010 >> k) & 1) for k in range(8)}
        expected = bin(0b10110010).count("1") % 2 == 1
        assert c.output_values(vec)[c.outputs[0]] is expected

    def test_parity_odd_width(self):
        c = parity_tree(5)
        vec = {f"x{k}": (k == 2) for k in range(5)}
        assert c.output_values(vec)[c.outputs[0]] is True

    def test_and_or_tree_depth(self):
        c = and_or_tree(16)
        assert c.depth() == 4

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            parity_tree(1)
        with pytest.raises(ValueError):
            and_or_tree(1)
