"""Unit tests for the technology descriptors."""

import pytest

from repro.process.technology import CMOS013, CMOS018, CMOS025, Technology


class TestTechnologyValidation:
    def test_default_is_quarter_micron(self):
        assert CMOS025.vdd == 2.5
        assert CMOS025.name == "cmos025"

    def test_reduced_thresholds(self):
        assert CMOS025.vtn_reduced == pytest.approx(0.5 / 2.5)
        assert CMOS025.vtp_reduced == pytest.approx(0.55 / 2.5)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("vdd", -1.0),
            ("vdd", 0.0),
            ("vtn", 0.0),
            ("vtn", 3.0),
            ("vtp", -0.1),
            ("tau_ps", 0.0),
            ("r_ratio", -2.0),
            ("c_gate_ff_per_um", 0.0),
            ("c_junction_ff_per_um", -0.5),
            ("w_min_um", 0.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        kwargs = dict(
            name="x",
            vdd=2.5,
            vtn=0.5,
            vtp=0.5,
            tau_ps=15.0,
            r_ratio=2.0,
            c_gate_ff_per_um=1.8,
            c_junction_ff_per_um=1.0,
            w_min_um=0.6,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            Technology(**kwargs)

    def test_scaled_override(self):
        fast = CMOS025.scaled(tau_ps=10.0)
        assert fast.tau_ps == 10.0
        assert fast.vdd == CMOS025.vdd
        # Original untouched (frozen dataclass).
        assert CMOS025.tau_ps == 14.5


class TestCapacitanceConversions:
    def test_roundtrip(self):
        width = 3.7
        assert CMOS025.width_for_cin(CMOS025.cin_for_width(width)) == pytest.approx(
            width
        )

    def test_cin_scales_linearly(self):
        assert CMOS025.cin_for_width(2.0) == pytest.approx(
            2.0 * CMOS025.cin_for_width(1.0)
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CMOS025.width_for_cin(-1.0)
        with pytest.raises(ValueError):
            CMOS025.cin_for_width(-1.0)


class TestNodeOrdering:
    def test_scaling_trend_across_nodes(self):
        # Finer nodes: lower VDD, smaller tau, smaller minimum width.
        assert CMOS025.vdd > CMOS018.vdd > CMOS013.vdd
        assert CMOS025.tau_ps > CMOS018.tau_ps > CMOS013.tau_ps
        assert CMOS025.w_min_um > CMOS018.w_min_um > CMOS013.w_min_um
