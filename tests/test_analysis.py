"""Tests for area, activity and power analysis."""

import pytest

from repro.analysis.activity import estimate_activity
from repro.analysis.area import (
    area_by_kind_um,
    circuit_area_um,
    total_input_capacitance_ff,
)
from repro.analysis.power import estimate_power
from repro.cells.gate_types import GateKind
from repro.netlist.builders import inverter_chain, parity_tree, ripple_carry_adder
from repro.netlist.circuit import Circuit


class TestArea:
    def test_chain_area(self, lib):
        chain = inverter_chain(3)
        min_inv = lib.inverter.cin_min(lib.tech)
        expected = 3 * lib.inverter.total_width_um(min_inv, lib.tech)
        assert circuit_area_um(chain, lib) == pytest.approx(expected)

    def test_sized_gates_counted(self, lib):
        chain = inverter_chain(3)
        chain.gates["n1"].cin_ff = 10.0 * lib.cref
        bigger = circuit_area_um(chain, lib)
        chain.gates["n1"].cin_ff = None
        assert bigger > circuit_area_um(chain, lib)

    def test_breakdown_sums_to_total(self, lib):
        adder = ripple_carry_adder(4)
        breakdown = area_by_kind_um(adder, lib)
        assert sum(breakdown.values()) == pytest.approx(circuit_area_um(adder, lib))
        assert set(breakdown) == {"nand2"}

    def test_total_input_cap(self, lib):
        chain = inverter_chain(2)
        min_inv = lib.inverter.cin_min(lib.tech)
        assert total_input_capacitance_ff(chain, lib) == pytest.approx(2 * min_inv)


class TestActivity:
    def test_toggle_rates_bounded(self):
        adder = ripple_carry_adder(4)
        report = estimate_activity(adder, n_vectors=64, seed=1)
        for rate in report.toggle_rate.values():
            assert 0.0 <= rate <= 1.0

    def test_inputs_toggle_half_the_time(self):
        chain = inverter_chain(1)
        report = estimate_activity(chain, n_vectors=2000, seed=5)
        assert report.rate("in") == pytest.approx(0.5, abs=0.05)
        # An inverter toggles exactly when its input does.
        assert report.rate("n0") == pytest.approx(report.rate("in"))

    def test_xor_tree_activity_high(self):
        """XOR propagates every toggle: deep parity nets stay active."""
        tree = parity_tree(8)
        report = estimate_activity(tree, n_vectors=512, seed=2)
        root = tree.outputs[0]
        assert report.rate(root) > 0.4

    def test_constant_ish_nets_low_activity(self):
        """A wide AND's output rarely toggles under random inputs."""
        c = Circuit("wideand")
        for k in range(4):
            c.add_input(f"i{k}")
        c.add_gate("y", GateKind.AND4, [f"i{k}" for k in range(4)])
        c.add_output("y")
        report = estimate_activity(c, n_vectors=1024, seed=3)
        assert report.rate("y") < 0.25

    def test_determinism(self):
        adder = ripple_carry_adder(2)
        a = estimate_activity(adder, n_vectors=64, seed=9)
        b = estimate_activity(adder, n_vectors=64, seed=9)
        assert a.toggle_rate == b.toggle_rate

    def test_validation(self):
        adder = ripple_carry_adder(2)
        with pytest.raises(ValueError):
            estimate_activity(adder, n_vectors=1)
        with pytest.raises(ValueError):
            estimate_activity(adder, input_probability=0.0)


class TestPower:
    def test_power_positive_and_scales_with_frequency(self, lib):
        adder = ripple_carry_adder(4)
        p100 = estimate_power(adder, lib, frequency_mhz=100.0)
        p200 = estimate_power(adder, lib, frequency_mhz=200.0)
        assert p100.total_uw > 0
        assert p200.dynamic_uw == pytest.approx(2.0 * p100.dynamic_uw, rel=1e-6)

    def test_upsizing_costs_power(self, lib):
        """The paper's core premise: sum W is a power proxy."""
        adder = ripple_carry_adder(4)
        before = estimate_power(adder, lib).dynamic_uw
        for gate in adder.gates.values():
            gate.cin_ff = 5.0 * lib.cref
        after = estimate_power(adder, lib).dynamic_uw
        assert after > 2.0 * before

    def test_short_circuit_fraction_bounded(self, lib):
        adder = ripple_carry_adder(4)
        report = estimate_power(adder, lib)
        assert 0.0 <= report.short_circuit_uw <= 0.5 * report.dynamic_uw

    def test_validation(self, lib):
        adder = ripple_carry_adder(2)
        with pytest.raises(ValueError):
            estimate_power(adder, lib, frequency_mhz=0.0)
