"""Tests for the AMPS-like and Sutherland baselines."""

import numpy as np
import pytest

from repro.baselines.amps import amps_distribute_constraint, amps_minimum_delay
from repro.baselines.sutherland import sutherland_distribute
from repro.sizing.bounds import delay_bounds
from repro.sizing.sensitivity import distribute_constraint
from repro.timing.evaluation import evaluate_path


class TestAmpsMinimumDelay:
    def test_never_beats_pops(self, eleven_gate_path, lib):
        """Fig. 2: the deterministic method's Tmin is the floor."""
        bounds = delay_bounds(eleven_gate_path, lib)
        amps = amps_minimum_delay(eleven_gate_path, lib)
        assert amps.delay_ps >= bounds.tmin_ps - 1e-6

    def test_gets_within_striking_distance(self, eleven_gate_path, lib):
        """...but it is a competent sizer: within ~15% of the optimum."""
        bounds = delay_bounds(eleven_gate_path, lib)
        amps = amps_minimum_delay(eleven_gate_path, lib)
        assert amps.delay_ps <= 1.15 * bounds.tmin_ps

    def test_spends_many_evaluations(self, eleven_gate_path, lib):
        """The Table 1 cost signature: ~100x the evaluation count."""
        amps = amps_minimum_delay(eleven_gate_path, lib)
        assert amps.evaluations > 50 * len(eleven_gate_path)

    def test_deterministic_given_seed(self, eleven_gate_path, lib):
        first = amps_minimum_delay(eleven_gate_path, lib, seed=7)
        second = amps_minimum_delay(eleven_gate_path, lib, seed=7)
        assert first.delay_ps == second.delay_ps
        np.testing.assert_allclose(first.sizes, second.sizes)

    def test_bad_step(self, eleven_gate_path, lib):
        with pytest.raises(ValueError):
            amps_minimum_delay(eleven_gate_path, lib, step=1.0)


class TestAmpsConstrained:
    def test_meets_constraint(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        tc = 1.3 * bounds.tmin_ps
        amps = amps_distribute_constraint(eleven_gate_path, lib, tc)
        assert amps.met_constraint
        assert amps.delay_ps <= tc * (1 + 1e-9)

    def test_oversizes_relative_to_pops(self, eleven_gate_path, lib):
        """Fig. 4: greedy + discrete steps cost area vs eq. 6."""
        bounds = delay_bounds(eleven_gate_path, lib)
        tc = 1.2 * bounds.tmin_ps
        ours = distribute_constraint(eleven_gate_path, lib, tc)
        amps = amps_distribute_constraint(eleven_gate_path, lib, tc)
        assert amps.met_constraint and ours.feasible
        assert amps.area_um >= ours.area_um * 0.98

    def test_infeasible_flagged(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        amps = amps_distribute_constraint(
            eleven_gate_path, lib, 0.5 * bounds.tmin_ps
        )
        assert not amps.met_constraint

    def test_bad_tc(self, eleven_gate_path, lib):
        with pytest.raises(ValueError):
            amps_distribute_constraint(eleven_gate_path, lib, 0.0)


class TestSutherland:
    def test_meets_constraint(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        tc = 1.5 * bounds.tmin_ps
        result = sutherland_distribute(eleven_gate_path, lib, tc)
        assert result.met_constraint
        assert result.delay_ps <= tc * (1 + 1e-6)

    def test_stage_delays_roughly_equal(self, eleven_gate_path, lib):
        """The method's defining property -- equal delay per stage (up to
        the minimum-drive clamps)."""
        bounds = delay_bounds(eleven_gate_path, lib)
        tc = 1.4 * bounds.tmin_ps
        result = sutherland_distribute(eleven_gate_path, lib, tc)
        timing = evaluate_path(eleven_gate_path, result.sizes, lib)
        mins = eleven_gate_path.min_sizes(lib)
        free = [
            d
            for i, d in enumerate(timing.stage_delays_ps)
            if i > 0 and result.sizes[i] > mins[i] * 1.05
        ]
        if len(free) >= 3:
            spread = (max(free) - min(free)) / np.mean(free)
            assert spread < 0.6

    def test_costlier_than_constant_sensitivity(self, eleven_gate_path, lib):
        """Fig. 3/4 motivation: equal-delay oversizes heavy gates."""
        bounds = delay_bounds(eleven_gate_path, lib)
        tc = 1.3 * bounds.tmin_ps
        ours = distribute_constraint(eleven_gate_path, lib, tc)
        theirs = sutherland_distribute(eleven_gate_path, lib, tc)
        assert ours.feasible and theirs.met_constraint
        assert theirs.area_um >= ours.area_um * 0.98

    def test_infeasible_budget(self, eleven_gate_path, lib):
        bounds = delay_bounds(eleven_gate_path, lib)
        result = sutherland_distribute(eleven_gate_path, lib, 0.5 * bounds.tmin_ps)
        assert not result.met_constraint

    def test_bad_tc(self, eleven_gate_path, lib):
        with pytest.raises(ValueError):
            sutherland_distribute(eleven_gate_path, lib, -5.0)
