"""Tests for waveform measurement utilities."""

import numpy as np
import pytest

from repro.spice.waveform import (
    MeasurementError,
    crossing_time,
    delay_50,
    ramp_input,
    transition_time,
)


@pytest.fixture()
def times():
    return np.linspace(0.0, 100.0, 1001)


class TestCrossing:
    def test_linear_ramp_crossing(self, times):
        volts = times / 100.0 * 2.5  # 0 -> 2.5 V over 100 ps
        t = crossing_time(times, volts, 1.25, rising=True)
        assert t == pytest.approx(50.0, abs=0.01)

    def test_falling_crossing(self, times):
        volts = 2.5 - times / 100.0 * 2.5
        t = crossing_time(times, volts, 1.25, rising=False)
        assert t == pytest.approx(50.0, abs=0.01)

    def test_after_window(self, times):
        # Two rising crossings; skip the first.
        volts = np.where(times < 50.0, times / 10.0, (times - 50.0) / 10.0)
        first = crossing_time(times, volts, 2.0, rising=True)
        second = crossing_time(times, volts, 2.0, rising=True, after_ps=50.0)
        assert first < 50.0 < second

    def test_missing_crossing_raises(self, times):
        volts = np.zeros_like(times)
        with pytest.raises(MeasurementError):
            crossing_time(times, volts, 1.0, rising=True)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            crossing_time([0, 1], [0.0], 0.5, True)


class TestDelayAndTransition:
    def test_delay_between_shifted_ramps(self, times):
        vdd = 2.5
        v_in = ramp_input(times, vdd, True, 10.0, 20.0)
        v_out = vdd - ramp_input(times, vdd, True, 30.0, 20.0)
        d = delay_50(times, v_in, v_out, vdd, True, False)
        assert d == pytest.approx(20.0, abs=0.2)

    def test_transition_time_of_ramp(self, times):
        vdd = 2.5
        wave = ramp_input(times, vdd, True, 10.0, 40.0)
        # A linear ramp's 20-80 extrapolation recovers the full ramp time.
        assert transition_time(times, wave, vdd, rising=True) == pytest.approx(
            40.0, rel=0.02
        )

    def test_falling_transition(self, times):
        vdd = 2.5
        wave = ramp_input(times, vdd, False, 10.0, 30.0)
        assert transition_time(times, wave, vdd, rising=False) == pytest.approx(
            30.0, rel=0.02
        )


class TestRampInput:
    def test_step(self, times):
        wave = ramp_input(times, 2.5, True, 50.0, 0.0)
        assert wave[0] == 0.0
        assert wave[-1] == 2.5
        assert set(np.unique(wave)) == {0.0, 2.5}

    def test_falling_ramp(self, times):
        wave = ramp_input(times, 2.5, False, 0.0, 50.0)
        assert wave[0] == pytest.approx(2.5)
        assert wave[-1] == pytest.approx(0.0)

    def test_negative_transition_rejected(self, times):
        with pytest.raises(ValueError):
            ramp_input(times, 2.5, True, 0.0, -1.0)
