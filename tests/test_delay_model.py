"""Unit tests for the eq. 1-3 closed-form delay model."""

import pytest

from repro.cells.gate_types import GateKind
from repro.timing.delay_model import (
    Edge,
    coupling_factor,
    fanout_four_delay,
    gate_delay,
    output_edge_for,
    output_transition_time,
    total_load,
)


class TestEdge:
    def test_flip(self):
        assert Edge.RISE.flipped is Edge.FALL
        assert Edge.FALL.flipped is Edge.RISE

    def test_output_edge_inverting(self, lib):
        inv = lib.cell(GateKind.INV)
        assert output_edge_for(inv, Edge.RISE) is Edge.FALL
        assert output_edge_for(inv, Edge.FALL) is Edge.RISE

    def test_output_edge_non_inverting(self, lib):
        buf = lib.cell(GateKind.BUF)
        assert output_edge_for(buf, Edge.RISE) is Edge.RISE


class TestTransitionTime:
    def test_linear_in_load(self, lib):
        inv = lib.inverter
        t1 = output_transition_time(inv, lib.tech, 10.0, 20.0, Edge.FALL)
        t2 = output_transition_time(inv, lib.tech, 10.0, 40.0, Edge.FALL)
        assert t2 == pytest.approx(2.0 * t1)

    def test_inverse_in_drive(self, lib):
        inv = lib.inverter
        t1 = output_transition_time(inv, lib.tech, 10.0, 40.0, Edge.FALL)
        t2 = output_transition_time(inv, lib.tech, 20.0, 40.0, Edge.FALL)
        assert t1 == pytest.approx(2.0 * t2)

    def test_eq2_value(self, lib):
        """tau_out = S * tau * C_L / C_IN, literally."""
        inv = lib.inverter
        got = output_transition_time(inv, lib.tech, 10.0, 40.0, Edge.FALL)
        assert got == pytest.approx(inv.s_hl(lib.tech) * lib.tech.tau_ps * 4.0)

    def test_requires_positive_drive(self, lib):
        with pytest.raises(ValueError):
            output_transition_time(lib.inverter, lib.tech, 0.0, 10.0, Edge.FALL)


class TestCouplingFactor:
    def test_no_coupling(self):
        assert coupling_factor(0.0, 50.0) == 1.0

    def test_bounded_by_three(self):
        # C_M >> C_L: factor saturates at 3 (full Miller overshoot).
        assert coupling_factor(1e9, 1.0) == pytest.approx(3.0, rel=1e-6)

    def test_monotone_in_cm(self):
        values = [coupling_factor(cm, 10.0) for cm in (0.0, 1.0, 5.0, 20.0)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_zero_everything(self):
        assert coupling_factor(0.0, 0.0) == 1.0


class TestGateDelay:
    def test_slope_term(self, lib):
        """Eq. 1: delay grows linearly with input transition, slope v_T/2."""
        inv = lib.inverter
        base = gate_delay(inv, lib.tech, 10.0, 30.0, 0.0, Edge.RISE)
        slow = gate_delay(inv, lib.tech, 10.0, 30.0, 100.0, Edge.RISE)
        assert slow.delay_ps - base.delay_ps == pytest.approx(
            0.5 * lib.tech.vtn_reduced * 100.0
        )

    def test_vt_choice_follows_input_edge(self, lib):
        inv = lib.inverter
        rise = gate_delay(inv, lib.tech, 10.0, 30.0, 100.0, Edge.RISE)
        fall = gate_delay(inv, lib.tech, 10.0, 30.0, 100.0, Edge.FALL)
        rise0 = gate_delay(inv, lib.tech, 10.0, 30.0, 0.0, Edge.RISE)
        fall0 = gate_delay(inv, lib.tech, 10.0, 30.0, 0.0, Edge.FALL)
        assert rise.delay_ps - rise0.delay_ps == pytest.approx(
            0.5 * lib.tech.vtn_reduced * 100.0
        )
        assert fall.delay_ps - fall0.delay_ps == pytest.approx(
            0.5 * lib.tech.vtp_reduced * 100.0
        )

    def test_total_load_includes_parasitic(self, lib):
        inv = lib.inverter
        assert total_load(inv, 10.0, 25.0) == pytest.approx(
            inv.parasitic_cap(10.0) + 25.0
        )

    def test_delay_decreases_with_drive_at_fixed_load(self, lib):
        inv = lib.inverter
        delays = [
            gate_delay(inv, lib.tech, cin, 100.0, 0.0, Edge.RISE).delay_ps
            for cin in (5.0, 10.0, 20.0, 40.0)
        ]
        assert all(b < a for a, b in zip(delays, delays[1:]))

    def test_negative_tin_rejected(self, lib):
        with pytest.raises(ValueError):
            gate_delay(lib.inverter, lib.tech, 10.0, 30.0, -1.0, Edge.RISE)

    def test_fo4_sanity(self, lib):
        """A 0.25 um FO4 should be tens of picoseconds."""
        fo4 = fanout_four_delay(lib.inverter, lib.tech, lib.cref)
        assert 30.0 < fo4 < 150.0

    def test_nor_slower_than_nand_on_worst_edge(self, lib):
        nand = lib.cell(GateKind.NAND2)
        nor = lib.cell(GateKind.NOR2)
        # Rising output (through the P stack) is the NOR's weakness.
        nand_worst = max(
            gate_delay(nand, lib.tech, 10.0, 40.0, 0.0, e).delay_ps
            for e in (Edge.RISE, Edge.FALL)
        )
        nor_worst = max(
            gate_delay(nor, lib.tech, 10.0, 40.0, 0.0, e).delay_ps
            for e in (Edge.RISE, Edge.FALL)
        )
        assert nor_worst > nand_worst
