"""Tests for K-critical-path extraction and path/circuit conversion."""

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.iscas.loader import load_benchmark
from repro.netlist.builders import ripple_carry_adder
from repro.netlist.circuit import Circuit
from repro.timing.critical_paths import (
    apply_path_sizes,
    critical_path,
    k_critical_paths,
    to_bounded_path,
)
from repro.timing.delay_model import Edge
from repro.timing.evaluation import path_delay_ps
from repro.timing.sta import analyze, gate_sizes


class TestExtraction:
    def test_matches_sta_critical_delay(self, lib):
        for name in ("fpd", "c432"):
            circuit = load_benchmark(name)
            sta = analyze(circuit, lib)
            top = critical_path(circuit, lib)
            assert top.delay_ps == pytest.approx(sta.critical_delay_ps, rel=1e-9)

    def test_k_paths_sorted_and_distinct(self, lib):
        circuit = load_benchmark("c432")
        paths = k_critical_paths(circuit, lib, k=5)
        assert len(paths) == 5
        delays = [p.delay_ps for p in paths]
        assert delays == sorted(delays, reverse=True)
        assert len({p.gate_names for p in paths}) == 5

    def test_k_validation(self, lib):
        with pytest.raises(ValueError):
            k_critical_paths(load_benchmark("fpd"), lib, k=0)

    def test_adder_critical_is_deep(self, lib):
        adder = ripple_carry_adder(16)
        top = critical_path(adder, lib)
        assert len(top.gate_names) >= 30  # the carry chain

    def test_path_is_structurally_connected(self, lib):
        circuit = load_benchmark("c880")
        top = critical_path(circuit, lib)
        for upstream, downstream in zip(top.gate_names, top.gate_names[1:]):
            assert upstream in circuit.gates[downstream].fanin


class TestBoundedConversion:
    def test_side_loads_accounted(self, lib):
        c = Circuit("f")
        c.add_input("a")
        c.add_gate("g0", GateKind.INV, ["a"])
        c.add_gate("g1", GateKind.INV, ["g0"])
        c.add_gate("side", GateKind.INV, ["g0"])  # off-path load on g0
        c.add_output("g1")
        c.add_output("side")
        sizes = gate_sizes(c, lib)
        path = to_bounded_path(c, lib, ["g0", "g1"], Edge.RISE)
        assert path.stages[0].cside_ff == pytest.approx(sizes["side"])

    def test_rejects_non_paths(self, lib):
        c = Circuit("f")
        c.add_input("a")
        c.add_gate("g0", GateKind.INV, ["a"])
        c.add_gate("g1", GateKind.INV, ["a"])  # not fed by g0
        c.add_output("g1")
        c.add_output("g0")


        with pytest.raises(ValueError):
            to_bounded_path(c, lib, ["g0", "g1"], Edge.RISE)

    def test_extracted_delay_consistent(self, lib):
        """Evaluating the bounded path at circuit sizes == claimed delay."""
        circuit = load_benchmark("fpd")
        top = critical_path(circuit, lib)
        sizes = gate_sizes(circuit, lib)
        vector = [sizes[g] for g in top.gate_names]
        assert path_delay_ps(top.path, vector, lib) == pytest.approx(
            top.delay_ps, rel=1e-12
        )


class TestWriteBack:
    def test_apply_path_sizes(self, lib):
        circuit = load_benchmark("fpd")
        top = critical_path(circuit, lib)
        new_sizes = np.full(len(top.gate_names), 5.0 * lib.cref)
        apply_path_sizes(circuit, top.gate_names, new_sizes)
        for name in top.gate_names:
            assert circuit.gates[name].cin_ff == pytest.approx(5.0 * lib.cref)

    def test_apply_shape_checked(self, lib):
        circuit = load_benchmark("fpd")
        top = critical_path(circuit, lib)
        with pytest.raises(ValueError):
            apply_path_sizes(circuit, top.gate_names, [1.0])

    def test_sizing_critical_path_speeds_that_path_up(self, lib):
        """Write-back speeds up the extracted path itself; the *circuit*
        critical delay may migrate to a newly loaded sibling path (the
        interaction the circuit driver iterates over), so the honest
        invariant is path-local."""
        from repro.sizing.bounds import min_delay_bound

        circuit = load_benchmark("fpd")
        top = critical_path(circuit, lib)
        tmin, sizes, _, _ = min_delay_bound(top.path, lib)
        assert tmin < top.delay_ps
        apply_path_sizes(circuit, top.gate_names, sizes)
        # Re-extract the same gate chain as a bounded path under the new
        # circuit state: its delay matches the promised Tmin (the side
        # loads along the chain did not change -- only its own sizes did).
        new_path = to_bounded_path(circuit, lib, top.gate_names, top.input_edge)
        assert path_delay_ps(new_path, sizes, lib) == pytest.approx(tmin, rel=1e-6)

    def test_circuit_driver_never_regresses(self, lib):
        """optimize_circuit snapshots the best state: its result is never
        slower than the starting circuit."""
        from repro.protocol.optimizer import optimize_circuit

        circuit = load_benchmark("fpd")
        before = analyze(circuit, lib).critical_delay_ps
        result = optimize_circuit(circuit, lib, tc_ps=0.8 * before, k_paths=2,
                                  max_passes=3)
        assert result.critical_delay_ps <= before + 1e-6
