"""Incremental STA engine: cone updates vs the full-analysis oracle.

The contract under test is *bit-identity*: after any sequence of sizing
and structural edits, :class:`repro.timing.incremental.IncrementalSta`
must hold exactly the arrivals, loads and critical endpoint that a
from-scratch :func:`repro.timing.sta.analyze` of the mutated circuit
produces -- no tolerances anywhere.
"""

import random

import pytest

from repro.buffering.insertion import default_flimits, overloaded_gates
from repro.buffering.netlist_insertion import (
    insert_buffer_pair,
    reduce_delay_with_buffers,
    remove_buffer_pair,
    trial_buffer_pairs,
)
from repro.cells.library import default_library
from repro.iscas.loader import load_benchmark
from repro.netlist.builders import ripple_carry_adder
from repro.sizing.sensitivity import circuit_gate_sensitivities
from repro.timing.incremental import IncrementalSta
from repro.timing.sta import analyze


@pytest.fixture(scope="module")
def lib():
    return default_library()


def assert_matches_oracle(engine, circuit, lib, context=""):
    """Every arrival, load and the critical endpoint, exactly equal."""
    got = engine.result()
    ref = analyze(circuit, lib)
    assert got.critical_delay_ps == ref.critical_delay_ps, context
    assert got.critical_output == ref.critical_output, context
    assert got.loads_ff == ref.loads_ff, context
    assert got.arrivals == ref.arrivals, context


class TestFullBuild:
    def test_initial_state_equals_analyze(self, lib):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(circuit, lib)
        assert_matches_oracle(engine, circuit, lib)

    def test_rebuild_after_out_of_band_edits(self, lib):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(circuit, lib)
        for gate in circuit.gates.values():
            gate.cin_ff = 3.0
        engine.rebuild()
        assert_matches_oracle(engine, circuit, lib)

    def test_respects_boundary_parameters(self, lib):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(
            circuit, lib, input_transition_ps=25.0, output_load_ff=10.0
        )
        ref = analyze(circuit, lib, input_transition_ps=25.0, output_load_ff=10.0)
        assert engine.result().arrivals == ref.arrivals
        assert engine.result().loads_ff == ref.loads_ff


class TestSizingUpdates:
    def test_single_gate_update(self, lib):
        circuit = load_benchmark("c432")
        engine = IncrementalSta(circuit, lib)
        name = next(iter(circuit.gates))
        circuit.gates[name].cin_ff = 7.5
        engine.update([name])
        assert_matches_oracle(engine, circuit, lib)

    def test_update_is_diff_based(self, lib):
        """Passing every gate name only pays for the actual changes."""
        circuit = load_benchmark("c432")
        engine = IncrementalSta(circuit, lib)
        done = engine.stats.gates_reevaluated
        engine.update(list(circuit.gates))
        assert engine.stats.gates_reevaluated == done

    def test_update_rejects_unknown_gate(self, lib):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(circuit, lib)
        with pytest.raises(KeyError):
            engine.update(["no_such_gate"])

    def test_cone_truncation_prunes_work(self, lib):
        """A sink-side gate's cone is tiny; most of the circuit is skipped."""
        circuit = load_benchmark("c7552")
        engine = IncrementalSta(circuit, lib)
        name = circuit.outputs[0]
        circuit.gates[name].cin_ff = 9.0
        done = engine.stats.gates_reevaluated
        engine.update([name])
        touched = engine.stats.gates_reevaluated - done
        assert touched < len(circuit.gates) / 4
        assert_matches_oracle(engine, circuit, lib)

    def test_unsized_gate_falls_back_to_cell_minimum(self, lib):
        circuit = load_benchmark("fpd")
        name = next(iter(circuit.gates))
        circuit.gates[name].cin_ff = 6.0
        engine = IncrementalSta(circuit, lib)
        circuit.gates[name].cin_ff = None
        engine.update([name])
        assert_matches_oracle(engine, circuit, lib)


class TestStructureRefresh:
    def test_buffer_pair_insert_and_undo(self, lib):
        circuit = load_benchmark("c432")
        engine = IncrementalSta(circuit, lib)
        baseline = engine.result()
        name = list(circuit.gates)[7]
        insert_buffer_pair(circuit, name, lib)
        engine.refresh_structure()
        assert_matches_oracle(engine, circuit, lib, "after insertion")
        remove_buffer_pair(circuit, name)
        engine.refresh_structure()
        assert_matches_oracle(engine, circuit, lib, "after undo")
        assert engine.result().arrivals == baseline.arrivals

    def test_in_place_kind_change_is_detected(self, lib):
        """Retyping a gate (same name/fanin/size) must re-time its cone."""
        from repro.cells.gate_types import GateKind

        circuit = load_benchmark("c432")
        engine = IncrementalSta(circuit, lib)
        gate = next(
            g for g in circuit.gates.values() if g.kind is GateKind.NAND2
        )
        gate.cin_ff = 4.0
        engine.update([gate.name])
        gate.kind = GateKind.NOR2
        engine.refresh_structure()
        assert_matches_oracle(engine, circuit, lib, "after kind change")

    def test_refresh_without_changes_is_quiet(self, lib):
        circuit = load_benchmark("c432")
        engine = IncrementalSta(circuit, lib)
        done = engine.stats.gates_reevaluated
        engine.refresh_structure()
        assert engine.stats.gates_reevaluated == done
        assert_matches_oracle(engine, circuit, lib)


EDIT_CIRCUITS = ("fpd", "c432", "c880")


class TestRandomEditEquivalence:
    """The ISSUE's acceptance bar: randomized size/buffer edit sequences."""

    @pytest.mark.parametrize("name", EDIT_CIRCUITS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_edit_sequence_matches_oracle(self, lib, name, seed):
        rng = random.Random(hash((name, seed)) & 0xFFFFFFFF)
        circuit = load_benchmark(name)
        engine = IncrementalSta(circuit, lib)
        inserted = []
        for step in range(25):
            roll = rng.random()
            if roll < 0.70:
                # Size edit: one gate, occasionally a handful.
                count = 1 if rng.random() < 0.8 else rng.randint(2, 6)
                chosen = rng.sample(list(circuit.gates), count)
                for gate_name in chosen:
                    gate = circuit.gates[gate_name]
                    base = gate.cin_ff if gate.cin_ff is not None else 1.0
                    gate.cin_ff = max(base * rng.uniform(0.4, 2.5), 0.3)
                engine.update(chosen)
            elif roll < 0.85 or not inserted:
                # Trial insertion kept.
                candidates = [
                    g
                    for g in circuit.gates
                    if "_buf" not in g and f"{g}_bufa" not in circuit.gates
                ]
                target = rng.choice(candidates)
                insert_buffer_pair(circuit, target, lib)
                inserted.append(target)
                engine.refresh_structure()
            else:
                # Undo of a previous insertion.
                target = inserted.pop(rng.randrange(len(inserted)))
                remove_buffer_pair(circuit, target)
                engine.refresh_structure()
            assert_matches_oracle(engine, circuit, lib, f"{name} seed={seed} step={step}")

    def test_adder_edit_sequence(self, lib):
        rng = random.Random(1234)
        circuit = ripple_carry_adder(8)
        engine = IncrementalSta(circuit, lib)
        for step in range(15):
            gate_name = rng.choice(list(circuit.gates))
            circuit.gates[gate_name].cin_ff = rng.uniform(0.5, 8.0)
            engine.update([gate_name])
            assert_matches_oracle(engine, circuit, lib, f"step={step}")


class TestResultViews:
    def test_results_are_stable_snapshots(self, lib):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(circuit, lib)
        before = engine.result()
        frozen = {
            net: dict(per_net) for net, per_net in before.arrivals.items()
        }
        name = next(iter(circuit.gates))
        circuit.gates[name].cin_ff = 9.0
        engine.update([name])
        assert {n: dict(p) for n, p in before.arrivals.items()} == frozen

    def test_arrival_and_sizes_accessors(self, lib):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(circuit, lib)
        ref = analyze(circuit, lib)
        net, edge = ref.critical_output
        assert engine.arrival(net, edge) == ref.critical_delay_ps
        sizes = engine.sizes()
        assert set(sizes) == set(circuit.gates)


class TestSensitivityProbe:
    def test_probe_restores_circuit_and_matches_numeric(self, lib):
        circuit = load_benchmark("fpd")
        ref = analyze(circuit, lib)
        sens = circuit_gate_sensitivities(circuit, lib)
        # Circuit and engine state unperturbed afterwards.
        assert analyze(circuit, lib).arrivals == ref.arrivals
        assert set(sens) == set(circuit.gates)
        # Cross-check a few entries against full-STA central differences.
        h = 1e-3
        for name in list(circuit.gates)[:5]:
            gate = circuit.gates[name]
            original = gate.cin_ff
            base = original if original is not None else (
                lib.cell(gate.kind).cin_min(lib.tech)
            )
            step = max(abs(base) * h, 1e-9)
            gate.cin_ff = base + step
            up = analyze(circuit, lib).critical_delay_ps
            gate.cin_ff = base - step
            down = analyze(circuit, lib).critical_delay_ps
            gate.cin_ff = original
            expected = (up - down) / (2.0 * step)
            assert sens[name] == pytest.approx(expected, rel=1e-6, abs=1e-12)

    def test_probe_accepts_shared_engine(self, lib):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(circuit, lib)
        sens = circuit_gate_sensitivities(
            circuit, lib, gates=list(circuit.gates)[:4], engine=engine
        )
        assert len(sens) == 4
        assert_matches_oracle(engine, circuit, lib)

    def test_probe_rejects_foreign_engine(self, lib):
        circuit = load_benchmark("fpd")
        other = IncrementalSta(load_benchmark("fpd"), lib)
        with pytest.raises(ValueError):
            circuit_gate_sensitivities(circuit, lib, engine=other)


class TestNetlistBuffering:
    def test_trial_buffer_pairs_leaves_no_trace(self, lib):
        circuit = load_benchmark("c432")
        ref = analyze(circuit, lib)
        candidates = list(circuit.gates)[:5]
        delays = trial_buffer_pairs(circuit, lib, candidates)
        assert set(delays) == set(candidates)
        assert analyze(circuit, lib).arrivals == ref.arrivals
        # Each trial delay equals a dedicated insertion's full STA.
        name = candidates[0]
        insert_buffer_pair(circuit, name, lib)
        assert delays[name] == analyze(circuit, lib).critical_delay_ps
        remove_buffer_pair(circuit, name)

    def test_overloaded_gates_consistent_with_sta_loads(self, lib):
        circuit = load_benchmark("c7552")
        limits = default_flimits(lib)
        fresh = overloaded_gates(circuit, lib, limits)
        via_sta = overloaded_gates(circuit, lib, limits, sta=analyze(circuit, lib))
        assert fresh == via_sta

    def test_reduce_delay_never_regresses(self, lib):
        circuit = load_benchmark("c432")
        base = analyze(circuit, lib).critical_delay_ps
        _, inserted, final = reduce_delay_with_buffers(
            circuit, lib, max_insertions=2
        )
        assert final <= base
        assert analyze(circuit, lib).critical_delay_ps == final
        for name in inserted:
            assert f"{name}_bufa" in circuit.gates

    def test_remove_pair_requires_insertion(self, lib):
        circuit = load_benchmark("fpd")
        with pytest.raises(ValueError):
            remove_buffer_pair(circuit, next(iter(circuit.gates)))


class TestTrialExceptionSafety:
    """A trial that raises mid-flight must leave circuit + engine clean."""

    def test_retime_failure_unwinds_inserted_pair(self, lib, monkeypatch):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(circuit, lib)
        ref = analyze(circuit, lib)
        names = set(circuit.gates)
        candidates = list(circuit.gates)[:3]

        real = IncrementalSta.refresh_structure
        calls = {"n": 0}

        def flaky(self):
            calls["n"] += 1
            # Call pattern inside trial_buffer_pairs: one re-time per
            # candidate, then the final exit re-sync.  Fail the second
            # candidate's re-time.
            if calls["n"] == 2:
                raise RuntimeError("injected re-time failure")
            return real(self)

        monkeypatch.setattr(IncrementalSta, "refresh_structure", flaky)
        with pytest.raises(RuntimeError, match="injected"):
            trial_buffer_pairs(circuit, lib, candidates, engine=engine)
        monkeypatch.undo()

        # The in-flight pair was removed and the engine re-synced: both
        # leave exactly as they arrived.
        assert set(circuit.gates) == names
        assert_matches_oracle(engine, circuit, lib, "after injected failure")
        assert analyze(circuit, lib).arrivals == ref.arrivals

    def test_removal_failure_still_resyncs_engine(self, lib, monkeypatch):
        circuit = load_benchmark("fpd")
        engine = IncrementalSta(circuit, lib)
        candidates = list(circuit.gates)[:2]

        real = remove_buffer_pair
        calls = {"n": 0}

        def flaky(target, name):
            calls["n"] += 1
            real(target, name)
            if calls["n"] == 1:
                raise RuntimeError("injected removal failure")

        import repro.buffering.netlist_insertion as netlist_insertion

        monkeypatch.setattr(netlist_insertion, "remove_buffer_pair", flaky)
        with pytest.raises(RuntimeError, match="injected"):
            trial_buffer_pairs(circuit, lib, candidates, engine=engine)
        monkeypatch.undo()
        assert not any("_buf" in name for name in circuit.gates)
        assert_matches_oracle(engine, circuit, lib, "after removal failure")


class TestRetarget:
    """Warm-start primitive: re-point an engine at another circuit."""

    def test_retarget_matches_oracle_across_sizings(self, lib):
        first = load_benchmark("fpd")
        engine = IncrementalSta(first, lib)
        second = load_benchmark("fpd")
        for i, gate in enumerate(second.gates.values()):
            if i % 3 == 0:
                gate.cin_ff = 5.0
        engine.retarget(second)
        assert engine.circuit is second
        assert_matches_oracle(engine, second, lib, "retarget resize")

    def test_retarget_matches_oracle_across_structures(self, lib):
        first = load_benchmark("fpd")
        engine = IncrementalSta(first, lib)
        second = load_benchmark("fpd")
        insert_buffer_pair(second, next(iter(second.gates)), lib)
        engine.retarget(second)
        assert_matches_oracle(engine, second, lib, "retarget insert")
        # ...and back to a pristine copy (the sweep's per-point reset).
        third = load_benchmark("fpd")
        engine.retarget(third)
        assert_matches_oracle(engine, third, lib, "retarget pristine")
