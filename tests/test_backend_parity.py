"""Backend parity ladder: every evaluator, every backend, bit for bit.

Two contracts are pinned here (see ``repro/timing/backend.py``):

* **Within one backend** the four evaluators -- scalar
  :func:`~repro.timing.sta.analyze`, warm
  :class:`~repro.timing.incremental.IncrementalSta`, the Monte-Carlo
  batch kernel and the cone-sparse
  :class:`~repro.timing.batch_probe.BatchProbeEngine` -- agree *bit for
  bit* on every CORE circuit under randomized sizings.  The ladder runs
  identically for the analytic backend and for the NLDM backend loaded
  from the committed sample ``.lib``.
* **Across backends** no bit-level relationship is promised, but the
  sample library was characterised *from* the analytic model, so at the
  table grid nodes the two backends must agree exactly -- the anchor
  that proves the parser/interpolator reads back what the exporter
  wrote.

Plus the serialization/caching seams that carry backend identity:
``Job``/``RunRecord`` backend specs and the Session cache-key prefix
that keeps two backends from aliasing each other's artefacts.
"""

import os

import numpy as np
import pytest

from repro.api import Job, JobError, Session
from repro.api.records import RunRecord
from repro.buffering.netlist_insertion import trial_buffer_pairs
from repro.cells.library import default_library
from repro.liberty import export_library, library_from_lib, parse_liberty
from repro.liberty.tables import NldmTables
from repro.mc.compile import compile_circuit
from repro.mc.corners import nominal_corners
from repro.mc.kernel import batch_analyze
from repro.timing.backend import backend_fo4
from repro.timing.batch_probe import BatchProbeEngine
from repro.timing.delay_model import Edge, fanout_four_delay, gate_delay
from repro.timing.incremental import IncrementalSta
from repro.timing.sta import analyze

from test_batch_probe import (
    CORE_CIRCUITS,
    _central_probes,
    _randomly_sized,
    _sample_gates,
    _scalar_sizing_delays,
)

SAMPLE_LIB = os.path.join(
    os.path.dirname(__file__), "..", "examples", "sample_nldm.lib"
)

BACKENDS = ("analytic", "nldm")


@pytest.fixture(scope="module")
def nldm_lib():
    return library_from_lib(SAMPLE_LIB)


@pytest.fixture(scope="module", params=BACKENDS)
def backend_lib(request, nldm_lib):
    """The library under test, one per backend (same cells, same tech)."""
    if request.param == "analytic":
        return default_library()
    return nldm_lib


class TestFourEvaluatorLadder:
    """scalar == incremental == batch kernel == batch probe, per backend."""

    @pytest.mark.parametrize("name", CORE_CIRCUITS)
    def test_all_evaluators_agree(self, name, backend_lib):
        lib = backend_lib
        circuit = _randomly_sized(name, lib, seed=7)
        oracle = analyze(circuit, lib)

        engine = IncrementalSta(circuit, lib)
        got = engine.result()
        assert got.critical_delay_ps == oracle.critical_delay_ps
        assert got.arrivals == oracle.arrivals
        assert got.loads_ff == oracle.loads_ff

        batch = batch_analyze(
            compile_circuit(circuit, lib), nominal_corners(lib.tech, 1)
        )
        assert batch.critical_delay_ps[0] == oracle.critical_delay_ps
        for net in circuit.gates:
            for edge in (Edge.RISE, Edge.FALL):
                event = oracle.arrivals[net][edge]
                assert batch.arrival(net, edge)[0] == event.time_ps
                assert batch.transition(net, edge)[0] == event.transition_ps

        pe = BatchProbeEngine(circuit, lib)
        assert pe.critical_delay_base_ps == oracle.critical_delay_ps

    @pytest.mark.parametrize("name", ("c432", "c880"))
    def test_probe_surfaces_match_scalar(self, name, backend_lib):
        lib = backend_lib
        circuit = _randomly_sized(name, lib, seed=13)
        engine = IncrementalSta(circuit, lib)
        pe = BatchProbeEngine(circuit, lib)

        probes = _central_probes(circuit, _sample_gates(circuit, 24))
        assert np.array_equal(
            pe.sizing_delays(probes),
            _scalar_sizing_delays(circuit, engine, probes),
        )

        candidates = _sample_gates(circuit, 16, seed=31)
        scalar = trial_buffer_pairs(
            circuit, lib, candidates, engine=engine, min_batch_columns=10**9
        )
        assert np.array_equal(
            pe.buffer_pair_delays(candidates),
            np.array([scalar[c] for c in candidates]),
        )


class TestNldmAnchors:
    """Analytic-vs-NLDM relationships pinned by the export fidelity."""

    def test_grid_node_parity_is_exact(self, nldm_lib):
        """At table grid nodes the two backends agree to the last bit."""
        analytic = default_library()
        backend = nldm_lib.delay_backend
        tables = backend.tables
        for kind, idx in tables.kind_index.items():
            cell = analytic.cells[kind]
            cin_ref = float(tables.cin_ref[idx])
            for slew in tables.slew_axis:
                for load in tables.load_axis:
                    for edge in (Edge.RISE, Edge.FALL):
                        ref = gate_delay(
                            cell, analytic.tech, cin_ref, float(load),
                            float(slew), edge,
                        )
                        got = backend.gate_timing(
                            cell, analytic.tech, cin_ref, float(load),
                            float(slew), edge,
                        )
                        assert got.delay_ps == ref.delay_ps
                        assert got.tout_ps == ref.tout_ps
                        assert got.output_edge == ref.output_edge

    def test_export_parse_round_trip_is_lossless(self, tmp_path):
        text = export_library(default_library())
        first = NldmTables.from_library_group(parse_liberty(text))
        path = tmp_path / "round.lib"
        path.write_text(text, encoding="utf-8")
        loaded = library_from_lib(str(path))
        again = export_library(loaded)
        assert again == text
        second = NldmTables.from_library_group(parse_liberty(again))
        assert second.digest == first.digest

    def test_committed_sample_lib_is_current(self, nldm_lib):
        """The fixture must match a fresh export of the analytic model."""
        fresh = NldmTables.from_library_group(
            parse_liberty(export_library(default_library()))
        )
        assert nldm_lib.delay_backend.tables.digest == fresh.digest

    def test_fo4_figures_track_analytic(self, nldm_lib):
        """Off-grid slews interpolate; FO4 stays within a small tolerance."""
        tech = nldm_lib.tech
        for kind, cell in nldm_lib.cells.items():
            cin = cell.cin_min(tech)
            nldm = backend_fo4(cell, tech, cin, nldm_lib.delay_backend)
            ref = fanout_four_delay(cell, tech, cin)
            assert nldm == pytest.approx(ref, rel=2e-3), kind


class TestSessionBackendIdentity:
    """Backend identity in cache keys, job echoes and record round trips."""

    def test_cross_backend_sessions_never_alias(self, nldm_lib):
        """Two sessions sharing one cache store stay fully disjoint.

        Simulates a shared/serialized cache: the NLDM session is pointed
        at the analytic session's cache objects, then both run the same
        benchmark.  The library-fingerprint key prefix must keep every
        artefact separate and each result bit-identical to an unshared
        session's.
        """
        s_analytic = Session()
        s_nldm = Session(library=nldm_lib)
        for attr in (
            "_benchmarks", "_sta_cache", "_engines", "_path_cache",
            "_bounds_cache", "_compiled", "_probes",
        ):
            setattr(s_nldm, attr, getattr(s_analytic, attr))

        rec_a = s_analytic.bounds(Job(benchmark="fpd"))
        rec_n = s_nldm.bounds(Job(benchmark="fpd"))
        fresh = Session(library=library_from_lib(SAMPLE_LIB))
        rec_fresh = fresh.bounds(Job(benchmark="fpd"))

        bounds_n = rec_n.payload["bounds"]
        assert bounds_n.tmin_ps == rec_fresh.payload["bounds"].tmin_ps
        assert bounds_n.tmax_ps == rec_fresh.payload["bounds"].tmax_ps
        assert bounds_n.tmin_ps != rec_a.payload["bounds"].tmin_ps
        # Every circuit-keyed cache holds one entry per library.
        for cache in (s_analytic._sta_cache, s_analytic._bounds_cache,
                      s_analytic._path_cache):
            assert len(cache) == 2
        # The benchmarks cache is backend-independent by design: one parse.
        assert len(s_analytic._benchmarks) == 1

    def test_session_rejects_mismatched_job(self):
        s = Session()
        with pytest.raises(JobError, match="pins backend"):
            s.bounds(Job(benchmark="fpd", backend="nldm", liberty=SAMPLE_LIB))
        s2 = Session(backend="nldm", liberty=SAMPLE_LIB)
        with pytest.raises(JobError, match="pins backend"):
            s2.bounds(Job(benchmark="fpd", backend="analytic"))
        with pytest.raises(JobError, match="pins liberty"):
            s2.bounds(
                Job(benchmark="fpd", backend="nldm", liberty="/other/file.lib")
            )

    def test_session_ctor_validation(self):
        with pytest.raises(JobError, match="requires a liberty"):
            Session(backend="nldm")
        with pytest.raises(JobError, match="only to backend"):
            Session(liberty=SAMPLE_LIB)
        with pytest.raises(JobError, match="unknown backend"):
            Session(backend="spice")
        with pytest.raises(ValueError, match="at most one"):
            Session(library=default_library(), backend="analytic")

    def test_job_backend_serialization_is_backward_compatible(self):
        plain = Job(benchmark="c432")
        data = plain.to_dict()
        assert "backend" not in data and "liberty" not in data
        assert Job.from_dict(data) == plain
        pinned = Job(benchmark="c432", backend="nldm", liberty=SAMPLE_LIB)
        assert Job.from_dict(pinned.to_dict()) == pinned
        with pytest.raises(JobError, match="only to backend"):
            Job(benchmark="c432", liberty=SAMPLE_LIB)

    def test_record_round_trip_rebuilds_nldm_library(self):
        session = Session(backend="nldm", liberty=SAMPLE_LIB)
        record = session.bounds(Job(benchmark="fpd"))
        assert record.job.backend == "nldm"
        assert record.job.liberty == SAMPLE_LIB
        # No explicit library: from_json must rebuild it from the echo.
        back = RunRecord.from_json(record.to_json())
        assert back.to_dict(with_timing=False) == record.to_dict(
            with_timing=False
        )
