"""The examples are part of the public surface: they must run clean."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Tmin" in result.stdout
        assert "feasible = False" in result.stdout  # the infeasibility demo

    def test_iscas_protocol_flow(self):
        result = _run("iscas_protocol_flow.py", "fpd")
        assert result.returncode == 0, result.stderr
        assert "weak" in result.stdout
        assert "sizing" in result.stdout

    def test_buffer_insertion_study(self):
        result = _run("buffer_insertion_study.py")
        assert result.returncode == 0, result.stderr
        assert "Flimit" in result.stdout
        assert "transistor-level check" in result.stdout

    def test_restructuring_study(self):
        result = _run("restructuring_study.py")
        assert result.returncode == 0, result.stderr
        assert "De Morgan restructuring" in result.stdout
        assert "equivalence over 128 random vectors: True" in result.stdout

    @pytest.mark.slow
    def test_low_power_flow(self):
        result = _run("low_power_flow.py")
        assert result.returncode == 0, result.stderr
        assert "power saved" in result.stdout

    def test_tc_sweep_pareto(self):
        result = _run("tc_sweep_pareto.py")
        assert result.returncode == 0, result.stderr
        assert "Pareto front" in result.stdout
        assert "warm-started" in result.stdout

    def test_yield_study(self):
        result = _run("yield_study.py")
        assert result.returncode == 0, result.stderr
        assert "guard band" in result.stdout
        assert "yield@Tc" in result.stdout
        assert "sizings re-bound" in result.stdout

    def test_serve_client(self):
        result = _run("serve_client.py")
        assert result.returncode == 0, result.stderr
        assert "executions       : 1 (coalesced 4)" in result.stdout
        assert "distinct records : 1" in result.stdout
        assert "cached = True" in result.stdout
        assert "drained clean (socket gone: True)" in result.stdout
