"""Tests for the ISCAS .bench reader / writer."""

import pytest

from repro.cells.gate_types import GateKind
from repro.netlist.bench_parser import (
    BenchParseError,
    parse_bench,
    to_bench,
)
from repro.netlist.circuit import equivalent, exhaustive_vectors

SAMPLE = """
# a tiny sample in ISCAS'85 style
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G8)

G5 = NAND(G1, G2)
G6 = NOT(G3)
G7 = NOR(G5, G6)
G8 = BUFF(G7)
"""


class TestParsing:
    def test_sample(self):
        c = parse_bench(SAMPLE, name="sample")
        assert c.inputs == ["G1", "G2", "G3"]
        assert c.outputs == ["G8"]
        assert c.gates["G5"].kind is GateKind.NAND2
        assert c.gates["G6"].kind is GateKind.INV
        assert c.gates["G7"].kind is GateKind.NOR2
        assert c.gates["G8"].kind is GateKind.BUF

    def test_comments_and_blank_lines_ignored(self):
        c = parse_bench("# only a comment\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert len(c) == 1

    def test_case_insensitive_functions(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = not(a)\n")
        assert c.gates["y"].kind is GateKind.INV

    def test_garbage_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny equals NOT a\n")

    def test_unknown_function_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_not_arity_enforced(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n")

    def test_xor_wide_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench(
                "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)\n"
            )

    def test_semantics(self):
        c = parse_bench(SAMPLE)
        # G8 = BUFF(NOR(NAND(G1,G2), NOT(G3)))
        out = c.output_values({"G1": True, "G2": True, "G3": True})
        assert out["G8"] is True
        out = c.output_values({"G1": False, "G2": True, "G3": True})
        assert out["G8"] is False


class TestWideGateDecomposition:
    def test_wide_nand_tree(self):
        nets = ", ".join(f"i{k}" for k in range(8))
        text = "\n".join(
            [f"INPUT(i{k})" for k in range(8)] + ["OUTPUT(y)", f"y = NAND({nets})"]
        )
        c = parse_bench(text)
        # Function preserved: NAND of 8 inputs.
        all_true = {f"i{k}": True for k in range(8)}
        assert c.output_values(all_true)["y"] is False
        one_false = dict(all_true, i3=False)
        assert c.output_values(one_false)["y"] is True
        # And it was decomposed into legal fan-ins.
        from repro.cells.gate_types import num_inputs

        assert all(num_inputs(g.kind) <= 4 for g in c.gates.values())

    def test_wide_or_tree(self):
        nets = ", ".join(f"i{k}" for k in range(9))
        text = "\n".join(
            [f"INPUT(i{k})" for k in range(9)] + ["OUTPUT(y)", f"y = OR({nets})"]
        )
        c = parse_bench(text)
        all_false = {f"i{k}": False for k in range(9)}
        assert c.output_values(all_false)["y"] is False
        assert c.output_values(dict(all_false, i7=True))["y"] is True


class TestRoundTrip:
    def test_parse_write_parse(self):
        first = parse_bench(SAMPLE, name="sample")
        text = to_bench(first)
        second = parse_bench(text, name="sample2")
        second.inputs = first.inputs  # same order by construction
        assert equivalent(first, second, exhaustive_vectors(first.inputs))

    def test_writer_emits_all_sections(self):
        text = to_bench(parse_bench(SAMPLE))
        assert "INPUT(G1)" in text
        assert "OUTPUT(G8)" in text
        assert "G5 = NAND(G1, G2)" in text
