"""Regression tests for the circuit driver's best-state restore.

The driver keeps the best state seen across passes and rolls back to it
before returning.  Historically the snapshot covered only gate *sizes*:
a pass after the best snapshot that modified structure (buffer pairs,
De Morgan rewrites) was silently kept with rolled-back sizes -- a
corrupted "best" circuit.  These tests drive the driver with scripted
path outcomes so a post-best structural pass happens deterministically,
then assert the returned circuit is exactly the best state.  The final
re-time must also stay cone-limited: only the gates whose size actually
changed in the rollback may be handed to the incremental engine.
"""

import numpy as np
import pytest

import repro.protocol.optimizer as opt
from repro.cells.gate_types import GateKind
from repro.iscas.loader import load_benchmark
from repro.netlist.circuit import Circuit
from repro.protocol.domains import classify_constraint
from repro.protocol.optimizer import ProtocolResult, WarmStart, optimize_circuit
from repro.sizing.bounds import min_delay_bound
from repro.timing.incremental import IncrementalSta
from repro.timing.path import BoundedPath, PathStage
from repro.timing.sta import analyze


def _neutral_sizes(stages, library):
    """Per-stage library-minimum sizes: numerically identical to unsized.

    Keeps the scripted outcomes *size-neutral* so the only timing delta
    they introduce is the structural edit itself (which regresses, making
    the pre-edit state the best one -- the scenario under test).
    """
    return np.asarray(
        [library.cell(stage.cell.kind).cin_min(library.tech) for stage in stages]
    )


def _structural_buffer_outcome(path, library, tc_ps):
    """A scripted outcome that asks for a buffer pair after the last gate."""
    inv = library.cell(GateKind.INV)
    last = path.stages[-1].name.split("_buf")[0]
    stages = path.stages + (
        PathStage(cell=inv, cside_ff=0.0, name=f"{last}_buf0"),
    )
    new_path = BoundedPath(
        stages=stages,
        cin_first_ff=path.cin_first_ff,
        cterm_ff=path.cterm_ff,
        input_edge=path.input_edge,
        tin_first_ps=path.tin_first_ps,
    )
    sizes = _neutral_sizes(stages, library)
    tmin, _, _, _ = min_delay_bound(path, library)
    return ProtocolResult(
        method="buffering+sizing",
        domain=classify_constraint(tc_ps, tmin),
        path=new_path,
        sizes=sizes,
        delay_ps=tmin,
        area_um=float(np.sum(sizes)),
        tc_ps=tc_ps,
        feasible=False,
        tmin_ps=tmin,
    )


def _structural_demorgan_outcome(path, library, tc_ps):
    """A scripted outcome that rewrites the path's first NOR via De Morgan."""
    inv = library.cell(GateKind.INV)
    target = next(
        stage for stage in path.stages if stage.cell.kind.value.startswith("nor")
    )
    nand = library.cell(GateKind.NAND2)
    stages = []
    for stage in path.stages:
        if stage is target:
            stages.append(PathStage(cell=inv, cside_ff=0.0, name=f"{target.name}_dm_in0"))
            stages.append(
                PathStage(cell=nand, cside_ff=0.0, name=f"{target.name}_dm_nand")
            )
            stages.append(PathStage(cell=inv, cside_ff=stage.cside_ff, name=target.name))
        else:
            stages.append(stage)
    new_path = BoundedPath(
        stages=tuple(stages),
        cin_first_ff=path.cin_first_ff,
        cterm_ff=path.cterm_ff,
        input_edge=path.input_edge,
        tin_first_ps=path.tin_first_ps,
    )
    sizes = _neutral_sizes(stages, library)
    tmin, _, _, _ = min_delay_bound(path, library)
    return ProtocolResult(
        method="restructuring",
        domain=classify_constraint(tc_ps, tmin),
        path=new_path,
        sizes=sizes,
        delay_ps=tmin,
        area_um=float(np.sum(sizes)),
        tc_ps=tc_ps,
        feasible=False,
        tmin_ps=tmin,
    )


@pytest.fixture()
def nor_chain():
    """A tiny all-NOR netlist (every path stage is rewritable)."""
    c = Circuit("norchain")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("n1", GateKind.NOR2, ["a", "b"])
    c.add_gate("n2", GateKind.NOR2, ["n1", "b"])
    c.add_gate("n3", GateKind.NOR2, ["n2", "a"])
    c.add_output("n3")
    c.validate()
    return c


class TestPostBestStructuralRestore:
    """A structural pass after the best snapshot must be rolled back."""

    def test_buffers_inserted_after_best_are_removed(self, lib, monkeypatch):
        circuit = load_benchmark("fpd")
        baseline = analyze(circuit, lib)
        tc = 0.5 * baseline.critical_delay_ps  # infeasible: passes never meet Tc

        monkeypatch.setattr(
            opt,
            "optimize_path",
            lambda path, library, tc_ps, **kw: _structural_buffer_outcome(
                path, library, tc_ps
            ),
        )
        result = optimize_circuit(circuit, lib, tc, k_paths=1, max_passes=4)

        # The buffer pair regressed the delay, so the best state is the
        # original netlist: same gates, original (unsized) sizes.
        assert set(result.circuit.gates) == set(circuit.gates)
        assert not any("_buf" in name for name in result.circuit.gates)
        assert [g.cin_ff for g in result.circuit.gates.values()] == [
            g.cin_ff for g in circuit.gates.values()
        ]
        assert result.circuit.outputs == circuit.outputs
        # ...and the reported delay is the delay OF the returned circuit.
        fresh = analyze(result.circuit, lib)
        assert result.critical_delay_ps == fresh.critical_delay_ps
        assert result.critical_delay_ps == baseline.critical_delay_ps

    def test_demorgan_rewrite_after_best_is_rolled_back(self, lib, monkeypatch, nor_chain):
        baseline = analyze(nor_chain, lib)
        tc = 0.5 * baseline.critical_delay_ps

        monkeypatch.setattr(
            opt,
            "optimize_path",
            lambda path, library, tc_ps, **kw: _structural_demorgan_outcome(
                path, library, tc_ps
            ),
        )
        result = optimize_circuit(nor_chain, lib, tc, k_paths=1, max_passes=4)

        # Pre-fix this kept the INV/NAND/INV rewrite (and its _dm gates)
        # while rolling back only the snapshotted sizes.
        assert set(result.circuit.gates) == set(nor_chain.gates)
        assert not any("_dm" in name for name in result.circuit.gates)
        assert result.circuit.gates["n2"].kind is GateKind.NOR2
        fresh = analyze(result.circuit, lib)
        assert result.critical_delay_ps == fresh.critical_delay_ps
        assert result.critical_delay_ps == baseline.critical_delay_ps

    def test_improving_structural_pass_is_kept(self, lib):
        """The rollback must not undo structure that IS the best state."""
        circuit = load_benchmark("c432")
        sta = analyze(circuit, lib)
        # Infeasibly tight: the real protocol reaches for structure.
        result = optimize_circuit(
            circuit, lib, 0.55 * sta.critical_delay_ps, k_paths=2, max_passes=3
        )
        fresh = analyze(result.circuit, lib)
        assert result.critical_delay_ps == fresh.critical_delay_ps
        assert result.critical_delay_ps <= sta.critical_delay_ps + 1e-6


class TestFinalUpdateCone:
    """The closing re-time feeds the engine only the gates that changed."""

    def test_final_update_is_not_whole_circuit(self, lib, monkeypatch):
        calls = []

        class RecordingEngine(IncrementalSta):
            def update(self, changed_gates):
                names = list(changed_gates)
                calls.append(len(names))
                return super().update(names)

        monkeypatch.setattr(opt, "IncrementalSta", RecordingEngine)
        circuit = load_benchmark("c432")
        sta = analyze(circuit, lib)
        result = optimize_circuit(
            circuit, lib, 1.05 * sta.critical_delay_ps, k_paths=2, max_passes=4
        )
        assert calls, "driver never updated the engine"
        # Every update -- the final rollback included -- names only path
        # gates / rollback diffs, never the whole netlist (c432 is ~10x
        # larger than any of its critical paths).
        assert max(calls) < len(result.circuit.gates)


class TestWarmStartIdentity:
    """Warm-started runs must be byte-identical to cold runs."""

    def test_warm_results_match_cold(self, lib):
        from repro.api.serialization import circuit_result_to_dict

        circuit = load_benchmark("fpd")
        sta = analyze(circuit, lib)
        warm = WarmStart()
        for ratio in (1.6, 1.3, 1.1):
            tc = ratio * sta.critical_delay_ps / 1.8
            hot = optimize_circuit(circuit, lib, tc, warm=warm)
            cold = optimize_circuit(circuit, lib, tc)
            assert circuit_result_to_dict(hot) == circuit_result_to_dict(cold)
        # The memos actually filled up (the speed-up side of the bargain)
        # -- and the extraction memo holds only the shared first-pass
        # state, not one full-circuit key per point per pass.
        assert warm.bounds_memo
        assert len(warm.extraction_memo) == 1
        assert warm.engine is not None

    def test_warm_start_is_bound_to_one_library(self, lib):
        from repro.cells.library import default_library

        circuit = load_benchmark("fpd")
        warm = WarmStart()
        optimize_circuit(circuit, lib, 1500.0, max_passes=1, warm=warm)
        assert warm.library is lib
        # The memos embed lib's characterisation: another library must
        # not be served from them.
        with pytest.raises(ValueError, match="different library"):
            optimize_circuit(circuit, default_library(), 1500.0, warm=warm)
