"""Batch runner: serial/parallel parity, fallback behaviour."""

import json

import pytest

from repro.api import Job, JobError, Session


@pytest.fixture(scope="module")
def session():
    return Session()


def _payload_bytes(record) -> bytes:
    return json.dumps(
        record.to_dict(with_timing=False), sort_keys=True
    ).encode("utf-8")


class TestOptimizeMany:
    def test_serial_matches_explicit_loop(self, session):
        jobs = [Job(benchmark="fpd", tc_ratio=r) for r in (2.8, 1.5)]
        batch = session.optimize_many(jobs)
        singles = [session.optimize(job) for job in jobs]
        for a, b in zip(batch, singles):
            assert _payload_bytes(a) == _payload_bytes(b)

    def test_parallel_payloads_byte_identical_to_serial(self, session):
        # The acceptance bar: >= 4 jobs, parallel workers, byte-identical
        # RunRecord payloads against the serial path.
        jobs = [Job(benchmark="fpd", tc_ratio=r) for r in (3.0, 1.6, 1.3, 1.05)]
        serial = session.optimize_many(jobs, workers=None)
        parallel = session.optimize_many(jobs, workers=4)
        assert len(parallel) == len(serial) == 4
        for a, b in zip(serial, parallel):
            assert _payload_bytes(a) == _payload_bytes(b)
        # Order is preserved: records echo their jobs positionally.
        assert [r.job for r in parallel] == jobs

    def test_results_cover_the_domain_spectrum(self, session):
        jobs = [Job(benchmark="fpd", tc_ratio=r) for r in (3.0, 1.05)]
        weak, hard = session.optimize_many(jobs)
        assert weak.payload.domain.domain.value == "weak"
        assert weak.payload.method == "sizing"
        assert hard.payload.area_um > weak.payload.area_um

    def test_rejects_non_jobs(self, session):
        with pytest.raises(JobError, match="Job instances"):
            session.optimize_many(["fpd"])

    def test_worker_error_propagates(self, session):
        # A bad benchmark must surface, not be swallowed by the fallback.
        jobs = [
            Job(benchmark="fpd", tc_ratio=2.0),
            Job(benchmark="c0000", tc_ratio=2.0),
        ]
        with pytest.raises(KeyError):
            session.optimize_many(jobs, workers=2)

    def test_pool_failure_falls_back_to_serial(self, session, monkeypatch):
        def broken(self, jobs, workers):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(Session, "_optimize_parallel", broken)
        jobs = [Job(benchmark="fpd", tc_ratio=r) for r in (2.4, 1.4)]
        records = session.optimize_many(jobs, workers=8)
        assert [r.payload.feasible for r in records] == [True, True]
