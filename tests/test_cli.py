"""Tests for the ``pops`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_flags_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimize", "fpd", "--tc-ps", "100", "--tc-ratio", "1.5"]
            )


class TestCommands:
    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "adder16" in out
        assert "c7552" in out

    def test_characterize(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "nor3" in out
        assert "Flimit" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "fpd"]) == 0
        out = capsys.readouterr().out
        assert "Tmin" in out
        assert "Tmax" in out

    def test_optimize(self, capsys):
        assert main(["optimize", "fpd", "--tc-ratio", "1.4"]) == 0
        out = capsys.readouterr().out
        assert "method" in out
        assert "feasible" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["bounds", "c0000"])


class TestReportCommands:
    def test_report(self, capsys):
        assert main(["report", "fpd"]) == 0
        out = capsys.readouterr().out
        assert "Timing report" in out
        assert "path #1" in out

    def test_report_with_tc(self, capsys):
        assert main(["report", "fpd", "--tc-ps", "800"]) == 0
        out = capsys.readouterr().out
        assert "violated" in out

    def test_power(self, capsys):
        assert main(["power", "fpd", "--vectors", "32"]) == 0
        out = capsys.readouterr().out
        assert "dynamic power" in out
        assert "uW" in out
