"""Tests for the ``pops`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_flags_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimize", "fpd", "--tc-ps", "100", "--tc-ratio", "1.5"]
            )


class TestCommands:
    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "adder16" in out
        assert "c7552" in out

    def test_characterize(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "nor3" in out
        assert "Flimit" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "fpd"]) == 0
        out = capsys.readouterr().out
        assert "Tmin" in out
        assert "Tmax" in out

    def test_optimize(self, capsys):
        assert main(["optimize", "fpd", "--tc-ratio", "1.4"]) == 0
        out = capsys.readouterr().out
        assert "method" in out
        assert "feasible" in out

    def test_unknown_benchmark_is_a_clean_error(self, capsys):
        assert main(["bounds", "c0000"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "c0000" in captured.err
        assert captured.out == ""  # no traceback, nothing on stdout

    def test_unknown_benchmark_json_error(self, capsys):
        assert main(["bounds", "c0000", "--json"]) == 2
        captured = capsys.readouterr()
        body = json.loads(captured.out)  # machine-parseable even on failure
        assert body["error"]["type"] == "KeyError"
        assert "c0000" in body["error"]["message"]
        assert captured.err.startswith("error:")

    def test_unexpected_errors_exit_1(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(args):
            raise RuntimeError("internal invariant violated")

        monkeypatch.setitem(cli._COMMANDS, "benchmarks", boom)
        assert main(["benchmarks", "--json"]) == 1
        body = json.loads(capsys.readouterr().out)
        assert body["error"]["type"] == "RuntimeError"

    def test_pops_debug_reraises(self, monkeypatch):
        monkeypatch.setenv("POPS_DEBUG", "1")
        with pytest.raises(KeyError):
            main(["bounds", "c0000"])


class TestVersionAndJson:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_benchmarks_json(self, capsys):
        assert main(["benchmarks", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {"name", "gates", "inputs", "depth"} <= set(rows[0])
        assert any(row["name"] == "adder16" for row in rows)

    def test_bounds_json_is_a_run_record(self, capsys):
        assert main(["bounds", "fpd", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "bounds"
        assert data["job"]["benchmark"] == "fpd"
        bounds = data["payload"]["bounds"]
        assert bounds["tmin_ps"] < bounds["tmax_ps"]

    def test_optimize_json_round_trips(self, capsys):
        from repro.api import RunRecord

        assert main(["optimize", "fpd", "--tc-ratio", "1.4", "--json"]) == 0
        record = RunRecord.from_json(capsys.readouterr().out)
        assert record.kind == "optimize-path"
        assert record.payload.feasible
        assert record.extra["tc_ps"] == pytest.approx(
            1.4 * record.extra["tmin_ps"]
        )

    def test_optimize_circuit_scope(self, capsys):
        assert main(["optimize", "fpd", "--tc-ratio", "1.8",
                     "--scope", "circuit", "--k-paths", "2"]) == 0
        out = capsys.readouterr().out
        assert "passes" in out
        assert "feasible" in out

    def test_power_json(self, capsys):
        assert main(["power", "fpd", "--vectors", "16", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "power"
        assert data["payload"]["dynamic_uw"] > 0


class TestMcCommand:
    def test_mc_table(self, capsys):
        assert main(["mc", "fpd", "--samples", "60"]) == 0
        out = capsys.readouterr().out
        assert "Monte-Carlo corner analysis" in out
        assert "guard band" in out
        assert "Worst endpoints" in out

    def test_mc_yield_at(self, capsys):
        assert main(["mc", "fpd", "--samples", "60", "--yield-at", "1700"]) == 0
        out = capsys.readouterr().out
        assert "yield" in out
        assert "-" not in out.splitlines()[3].split()[-1]  # yield populated

    def test_mc_json_round_trips(self, capsys):
        from repro.api import RunRecord

        assert main(["mc", "fpd", "--samples", "40", "--seed", "7",
                     "--yield-at", "1700", "--json"]) == 0
        record = RunRecord.from_json(capsys.readouterr().out)
        assert record.kind == "mc"
        assert record.job.mc_samples == 40
        assert record.job.mc_seed == 7
        assert record.payload.n_samples == 40
        assert record.extra["tc_ps"] == 1700.0

    def test_mc_multiple_benchmarks_json(self, capsys):
        from repro.api import RunRecord

        assert main(["mc", "fpd", "adder16", "--samples", "40", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["job"]["benchmark"] for e in entries] == ["fpd", "adder16"]
        records = [RunRecord.from_dict(e) for e in entries]
        assert all(r.kind == "mc" for r in records)

    def test_mc_store_writes_lossless_records(self, capsys, tmp_path):
        from repro.api import RunRecord

        store = str(tmp_path / "mc")
        assert main(["mc", "fpd", "--samples", "40", "--store", store]) == 0
        capsys.readouterr()
        with open(f"{store}/fpd.mc.json", encoding="utf-8") as handle:
            stored = RunRecord.from_json(handle.read())
        assert stored.kind == "mc"
        # Same invocation again: the record content is reproducible.
        assert main(["mc", "fpd", "--samples", "40", "--json"]) == 0
        again = RunRecord.from_json(capsys.readouterr().out)
        assert stored.to_dict(with_timing=False) == again.to_dict(
            with_timing=False
        )

    def test_mc_bad_samples_is_a_clean_error(self, capsys):
        assert main(["mc", "fpd", "--samples", "1"]) == 2
        assert "mc_samples" in capsys.readouterr().err


class TestReportCommands:
    def test_report(self, capsys):
        assert main(["report", "fpd"]) == 0
        out = capsys.readouterr().out
        assert "Timing report" in out
        assert "path #1" in out

    def test_report_with_tc(self, capsys):
        assert main(["report", "fpd", "--tc-ps", "800"]) == 0
        out = capsys.readouterr().out
        assert "violated" in out

    def test_power(self, capsys):
        assert main(["power", "fpd", "--vectors", "32"]) == 0
        out = capsys.readouterr().out
        assert "dynamic power" in out
        assert "uW" in out


class TestSweepCommand:
    GRID = ["sweep", "fpd", "--tc-ratios", "1.3,1.6",
            "--k-paths", "2", "--max-passes", "2", "--quiet"]

    def test_sweep_table_store_and_resume(self, capsys, tmp_path):
        store = str(tmp_path / "camp")
        assert main(self.GRID + ["--store", store]) == 0
        out = capsys.readouterr().out
        assert "pareto" in out
        assert "2 computed, 0 resumed" in out
        # Second run resumes: every journaled point is skipped.
        assert main(self.GRID + ["--store", store, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 computed, 2 resumed" in out

    def test_sweep_json_is_a_sweep_record(self, capsys):
        assert main(self.GRID + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "sweep"
        assert data["payload"]["spec"]["benchmarks"] == ["fpd"]
        points = data["payload"]["summary"]["points"]
        assert len(points) == 2
        assert data["payload"]["summary"]["frontier"]

    def test_sweep_range_syntax(self, capsys):
        assert main(["sweep", "fpd", "--tc-ratios", "1.2:1.8:3",
                     "--scope", "path", "--quiet", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        ratios = [p["tc_ratio"] for p in data["payload"]["summary"]["points"]]
        assert ratios == pytest.approx([1.2, 1.5, 1.8])

    def test_resume_requires_store(self, capsys):
        assert main(self.GRID + ["--resume"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_axis_flags_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "fpd", "--tc-ratios", "1.5", "--tc-ps", "900"]
            )

    def test_empty_point_list_rejected(self):
        # An empty --tc-ps must not silently fall back to the ratio axis.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fpd", "--tc-ps", ""])

    def test_unresumed_store_reuse_is_a_clean_error(self, capsys, tmp_path):
        store = str(tmp_path / "camp")
        assert main(self.GRID + ["--store", store]) == 0
        capsys.readouterr()
        # Designed failure: message + exit 2, not a traceback.
        assert main(self.GRID + ["--store", store]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--resume" in err


class TestServeCli:
    """The daemon client subcommands against an in-process server."""

    @pytest.fixture()
    def daemon(self, tmp_path):
        from repro.serve import ServeConfig, start_server_thread

        sock = str(tmp_path / "pops.sock")
        config = ServeConfig(
            socket_path=sock,
            threads=2,
            heavy_threads=1,
            store_dir=str(tmp_path / "store"),
            cache_limit=64,
        )
        server, thread = start_server_thread(config)
        yield sock
        server.request_shutdown(drain=True)
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_submit_bounds_text(self, daemon, capsys):
        assert main(["submit", "bounds", "fpd", "--socket", daemon]) == 0
        captured = capsys.readouterr()
        assert "kind     : bounds" in captured.out
        assert "cached   : False" in captured.out
        # the NDJSON event stream lands on stderr
        events = [json.loads(line) for line in captured.err.splitlines()]
        assert [e["event"] for e in events] == ["queued", "started"]

    def test_submit_json_record_round_trips(self, daemon, capsys):
        from repro.api import RunRecord, Session

        assert main(["submit", "optimize", "fpd", "--socket", daemon,
                     "--tc-ratio", "1.4", "--quiet", "--json"]) == 0
        record = RunRecord.from_json(capsys.readouterr().out)
        from repro.api import Job

        direct = Session().optimize(Job(benchmark="fpd", tc_ratio=1.4))
        assert record.to_dict(with_timing=False) == direct.to_dict(
            with_timing=False
        )

    def test_second_submit_is_cached(self, daemon, capsys):
        args = ["submit", "mc", "fpd", "--samples", "64", "--socket", daemon,
                "--quiet"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cached   : True" in capsys.readouterr().out

    def test_status_text_and_json(self, daemon, capsys):
        assert main(["submit", "bounds", "fpd", "--socket", daemon,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["status", "--socket", daemon]) == 0
        out = capsys.readouterr().out
        assert "Session caches" in out and "store    :" in out
        assert main(["status", "--socket", daemon, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["serve"]["submitted"] >= 1
        assert status["queue"]["depth"] == 0
        assert "bounds" in status["session"]["caches"]

    def test_shutdown_command_drains(self, tmp_path, capsys):
        from repro.serve import ServeConfig, start_server_thread

        sock = str(tmp_path / "one.sock")
        server, thread = start_server_thread(
            ServeConfig(socket_path=sock, threads=1, heavy_threads=1)
        )
        assert main(["shutdown", "--socket", sock]) == 0
        assert "drained" in capsys.readouterr().out
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_client_error_when_daemon_is_down(self, tmp_path, capsys):
        sock = str(tmp_path / "nobody.sock")
        assert main(["status", "--socket", sock, "--json"]) == 2
        body = json.loads(capsys.readouterr().out)
        assert body["error"]["type"] == "ServeClientError"


class TestTrace:
    def test_optimize_trace_flag_writes_jsonl(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(
            ["optimize", "fpd", "--tc-ratio", "1.4", "--scope", "circuit",
             "--trace", trace, "--json"]
        ) == 0
        captured = capsys.readouterr()
        record = json.loads(captured.out)
        assert record["telemetry"]["passes"]
        assert "span(s)" in captured.err
        with open(trace, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert "trace" in lines[0]
        names = {line.get("name") for line in lines[1:]}
        assert "session.optimize" in names
        assert "optimize.pass" in names

    def test_trace_renders_jsonl(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(
            ["optimize", "fpd", "--tc-ratio", "1.4", "--trace", trace]
        ) == 0
        capsys.readouterr()
        assert main(["trace", trace]) == 0
        out = capsys.readouterr().out
        assert "session.optimize" in out
        assert "cumulative by name" in out

    def test_trace_renders_record_telemetry(self, tmp_path, capsys):
        record_path = tmp_path / "run.json"
        assert main(
            ["optimize", "fpd", "--tc-ratio", "1.4", "--scope", "circuit",
             "--json"]
        ) == 0
        record_path.write_text(capsys.readouterr().out)
        assert main(["trace", str(record_path)]) == 0
        out = capsys.readouterr().out
        assert "pass   delay_ps" in out
        assert "delay    :" in out

    def test_trace_missing_file_is_a_clean_error(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_untraced_optimize_has_no_telemetry_key_without_timing(
        self, capsys
    ):
        assert main(["optimize", "fpd", "--tc-ratio", "1.4", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        # Path-scope runs carry no optimizer telemetry block.
        assert "telemetry" not in record

    def test_status_shows_hit_rate_column(self, tmp_path, capsys):
        from repro.serve import ServeConfig, start_server_thread

        sock = str(tmp_path / "pops.sock")
        server, thread = start_server_thread(
            ServeConfig(socket_path=sock, threads=1, heavy_threads=1)
        )
        try:
            assert main(
                ["submit", "bounds", "fpd", "--socket", sock, "--quiet"]
            ) == 0
            capsys.readouterr()
            assert main(["status", "--socket", sock]) == 0
            out = capsys.readouterr().out
            assert "hit rate" in out
        finally:
            server.request_shutdown(drain=True)
            thread.join(timeout=30)
        assert not thread.is_alive()
