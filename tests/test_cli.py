"""Tests for the ``pops`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_flags_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimize", "fpd", "--tc-ps", "100", "--tc-ratio", "1.5"]
            )


class TestCommands:
    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "adder16" in out
        assert "c7552" in out

    def test_characterize(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "nor3" in out
        assert "Flimit" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "fpd"]) == 0
        out = capsys.readouterr().out
        assert "Tmin" in out
        assert "Tmax" in out

    def test_optimize(self, capsys):
        assert main(["optimize", "fpd", "--tc-ratio", "1.4"]) == 0
        out = capsys.readouterr().out
        assert "method" in out
        assert "feasible" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["bounds", "c0000"])


class TestVersionAndJson:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_benchmarks_json(self, capsys):
        assert main(["benchmarks", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {"name", "gates", "inputs", "depth"} <= set(rows[0])
        assert any(row["name"] == "adder16" for row in rows)

    def test_bounds_json_is_a_run_record(self, capsys):
        assert main(["bounds", "fpd", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "bounds"
        assert data["job"]["benchmark"] == "fpd"
        bounds = data["payload"]["bounds"]
        assert bounds["tmin_ps"] < bounds["tmax_ps"]

    def test_optimize_json_round_trips(self, capsys):
        from repro.api import RunRecord

        assert main(["optimize", "fpd", "--tc-ratio", "1.4", "--json"]) == 0
        record = RunRecord.from_json(capsys.readouterr().out)
        assert record.kind == "optimize-path"
        assert record.payload.feasible
        assert record.extra["tc_ps"] == pytest.approx(
            1.4 * record.extra["tmin_ps"]
        )

    def test_optimize_circuit_scope(self, capsys):
        assert main(["optimize", "fpd", "--tc-ratio", "1.8",
                     "--scope", "circuit", "--k-paths", "2"]) == 0
        out = capsys.readouterr().out
        assert "passes" in out
        assert "feasible" in out

    def test_power_json(self, capsys):
        assert main(["power", "fpd", "--vectors", "16", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "power"
        assert data["payload"]["dynamic_uw"] > 0


class TestReportCommands:
    def test_report(self, capsys):
        assert main(["report", "fpd"]) == 0
        out = capsys.readouterr().out
        assert "Timing report" in out
        assert "path #1" in out

    def test_report_with_tc(self, capsys):
        assert main(["report", "fpd", "--tc-ps", "800"]) == 0
        out = capsys.readouterr().out
        assert "violated" in out

    def test_power(self, capsys):
        assert main(["power", "fpd", "--vectors", "32"]) == 0
        out = capsys.readouterr().out
        assert "dynamic power" in out
        assert "uW" in out
