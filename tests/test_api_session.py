"""Session facade: characterisation caching, state-keyed memoization."""

import pytest

import repro.buffering.insertion as insertion
from repro.api import Job, JobError, Session, circuit_state_key
from repro.buffering.netlist_insertion import insert_buffer_pair
from repro.cells.library import default_library
from repro.iscas.loader import load_benchmark
from repro.timing.sta import analyze


@pytest.fixture()
def counted_characterize(monkeypatch):
    """Count actual library characterisations behind ``default_flimits``."""
    calls = {"n": 0}
    real = insertion.characterize_library

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(insertion, "characterize_library", counting)
    return calls


class TestFlimitCaching:
    def test_characterization_runs_once_per_session(self, counted_characterize):
        session = Session(library=default_library())
        job = Job(benchmark="fpd", tc_ratio=1.3)   # medium: uses the table
        session.optimize(job)
        assert counted_characterize["n"] == 1
        # Repeated optimizations perform ZERO additional characterisations.
        session.optimize(job.with_constraint(tc_ratio=1.1))
        session.optimize(job.with_constraint(tc_ratio=1.6))
        assert counted_characterize["n"] == 1
        assert session.stats.characterizations == 1

    def test_module_cache_shares_across_sessions(self, counted_characterize):
        library = default_library()
        Session(library=library).flimits()
        assert counted_characterize["n"] == 1
        # A second session over the *same* library instance hits the
        # insertion-layer cache: still one characterisation in total.
        Session(library=library).flimits()
        assert counted_characterize["n"] == 1

    def test_use_cache_false_forces_recompute(self, counted_characterize):
        library = default_library()
        first = insertion.default_flimits(library)
        fresh = insertion.default_flimits(library, use_cache=False)
        assert counted_characterize["n"] == 2
        assert first == fresh

    def test_cache_contains_is_the_public_probe(self):
        library = default_library()
        assert not insertion.flimit_cache_contains(library)
        insertion.default_flimits(library)
        assert insertion.flimit_cache_contains(library)
        assert not insertion.flimit_cache_contains(default_library())

    def test_stale_id_reuse_entry_counts_a_characterization(
        self, counted_characterize
    ):
        """A dead entry keyed at a reused id must read as a cache miss.

        Simulates ``id()`` reuse: another library lived at this address,
        was characterised, and was garbage-collected -- leaving a cache
        entry whose weak reference is dead.  Probing by raw key would
        claim residency and undercount ``stats.characterizations``; the
        public probe checks the referent.
        """
        import weakref

        library = default_library()

        class Anchor:
            pass

        ghost = Anchor()
        insertion._FLIMIT_CACHE[id(library)] = (weakref.ref(ghost), {})
        del ghost  # the weakref is now dead; the stale entry remains
        try:
            assert not insertion.flimit_cache_contains(library)
            session = Session(library=library)
            session.flimits()
            assert session.stats.characterizations == 1
            assert counted_characterize["n"] == 1
            # The real characterisation replaced the stale entry.
            assert insertion.flimit_cache_contains(library)
        finally:
            insertion._FLIMIT_CACHE.pop(id(library), None)


class TestStateKeyedCaches:
    def test_state_key_tracks_sizing(self):
        circuit = load_benchmark("fpd")
        key = circuit_state_key(circuit)
        assert circuit_state_key(circuit.copy()) == key
        circuit.gates[next(iter(circuit.gates))].cin_ff = 99.0
        assert circuit_state_key(circuit) != key

    def test_sweep_extracts_and_bounds_once(self):
        session = Session()
        base = Job(benchmark="fpd")
        session.bounds(base)
        session.bounds(base)
        session.optimize(base.with_constraint(tc_ratio=2.0))
        assert session.stats.path_misses == 1
        assert session.stats.bounds_misses == 1
        assert session.stats.bounds_hits >= 2
        assert session.stats.benchmark_misses == 1

    def test_sta_memoized_until_resized(self):
        session = Session()
        circuit = load_benchmark("fpd")
        first = session.sta(circuit)
        assert session.sta(circuit) is first
        assert session.stats.sta_hits == 1
        circuit.gates[next(iter(circuit.gates))].cin_ff = 42.0
        assert session.sta(circuit) is not first
        assert session.stats.sta_misses == 2

    def test_clear_caches(self):
        session = Session()
        session.bounds(Job(benchmark="fpd"))
        session.clear_caches()
        assert session._bounds_cache == {}
        assert session._engines == {}
        assert session._flimits is None


class TestInvalidation:
    """Mutating a circuit after an analysis can never serve stale state."""

    def test_resized_circuit_gets_fresh_arrivals(self):
        session = Session()
        circuit = load_benchmark("fpd")
        session.sta(circuit)
        circuit.gates[next(iter(circuit.gates))].cin_ff = 42.0
        served = session.sta(circuit)
        fresh = analyze(circuit, session.library)
        assert served.critical_delay_ps == fresh.critical_delay_ps
        assert served.arrivals == fresh.arrivals
        assert served.loads_ff == fresh.loads_ff
        # ...and the re-sizing was served incrementally, not by full STA.
        assert session.stats.sta_incremental == 1

    def test_structural_mutation_gets_fresh_engine(self):
        session = Session()
        circuit = load_benchmark("fpd")
        session.sta(circuit)
        insert_buffer_pair(circuit, next(iter(circuit.gates)), session.library)
        served = session.sta(circuit)
        fresh = analyze(circuit, session.library)
        assert served.arrivals == fresh.arrivals
        assert session.stats.sta_incremental == 0
        assert len(session._engines) == 2

    def test_caller_mutations_cannot_corrupt_the_engine(self):
        """The engine snapshots the circuit; later edits don't leak in."""
        session = Session()
        circuit = load_benchmark("fpd")
        first = session.sta(circuit)
        reference = analyze(circuit, session.library)
        # Mutate without telling the session, then hand in a pristine copy.
        pristine = load_benchmark("fpd")
        circuit.gates[next(iter(circuit.gates))].cin_ff = 3.21
        session.sta(circuit)
        served = session.sta(pristine)
        assert served.arrivals == reference.arrivals
        assert first.arrivals == reference.arrivals

    def test_incremental_misses_stay_bit_identical_over_a_sweep(self):
        session = Session()
        circuit = load_benchmark("fpd")
        names = list(circuit.gates)
        for step, scale in enumerate((0.5, 1.5, 3.0, 0.8)):
            gate = circuit.gates[names[step]]
            gate.cin_ff = scale * 4.0
            served = session.sta(circuit)
            fresh = analyze(circuit, session.library)
            assert served.arrivals == fresh.arrivals, f"step={step}"
        assert session.stats.sta_incremental == 3


class TestJobPlumbing:
    def test_optimize_requires_a_constraint(self):
        session = Session()
        with pytest.raises(JobError, match="constraint"):
            session.optimize(Job(benchmark="fpd"))

    def test_tc_ps_passes_through(self):
        session = Session()
        record = session.optimize(Job(benchmark="fpd", tc_ps=1200.0))
        assert record.extra["tc_ps"] == 1200.0
        assert record.payload.tc_ps == 1200.0

    def test_tc_ratio_scales_tmin(self):
        session = Session()
        job = Job(benchmark="fpd", tc_ratio=2.0)
        tmin = session.path_bounds(session.resolve_circuit(job)).tmin_ps
        record = session.optimize(job)
        assert record.extra["tc_ps"] == pytest.approx(2.0 * tmin)

    def test_inline_circuit_job(self):
        session = Session()
        circuit = load_benchmark("fpd")
        record = session.optimize(Job(circuit=circuit, tc_ratio=2.5))
        assert record.kind == "optimize-path"
        assert record.payload.feasible

    def test_circuit_scope_forwards_restructuring_flag(self, monkeypatch):
        import repro.protocol.optimizer as optimizer

        seen = []
        real = optimizer.optimize_path

        def spy(*args, **kwargs):
            seen.append(kwargs.get("allow_restructuring"))
            return real(*args, **kwargs)

        monkeypatch.setattr(optimizer, "optimize_path", spy)
        session = Session()
        session.optimize(
            Job(benchmark="fpd", tc_ratio=1.15, scope="circuit",
                k_paths=2, max_passes=1, allow_restructuring=False)
        )
        assert seen and all(flag is False for flag in seen)

    def test_library_and_tech_are_exclusive(self):
        from repro.process.technology import CMOS025

        with pytest.raises(ValueError, match="at most one"):
            Session(library=default_library(), tech=CMOS025)

    def test_unknown_benchmark_raises_keyerror(self):
        with pytest.raises(KeyError):
            Session().bounds(Job(benchmark="c0000"))
